"""A self-contained enciphered database: superblock + index + records.

The bare :class:`~repro.core.enciphered_btree.EncipheredBTree` keeps its
root id and geometry in Python attributes; a real deployment must survive
a restart from the platter alone.  :class:`EncipheredDatabase` adds the
missing piece: **block 0 is a superblock** holding the root id, the
minimum degree and the key count, enciphered under the file key like any
other block (an opponent cannot even read the geometry), plus a magic tag
that authenticates the deciphering key.

``create`` builds a fresh database; ``reopen`` reconstructs a working
handle from the two disks and the secret material alone, verifying the
B-Tree invariants on the way up.

Write policies and transactions
-------------------------------

By default the database *autocommits*: every ``insert``/``delete``
re-enciphers the superblock and (with the default write-through pager)
pushes each dirty node block to disk immediately.  That is the mode the
paper's experiments must use -- C1/C3 charge every node rewrite its disk
write, and the per-operation cipher counts assume no batching.

For ingest-style workloads the hot path can amortise that cost:

* ``create(..., write_back=True)`` puts the node pager in write-back
  mode, so repeated rewrites of a hot block coalesce;
* :meth:`EncipheredDatabase.transaction` defers the superblock rewrite
  and every dirty node block to a single :meth:`commit` at scope exit,
  and rolls the index back (discarding the dirty pages) if the block
  raises;
* :meth:`EncipheredDatabase.bulk_load` builds the index bottom-up,
  writing and enciphering each node exactly once.

Deferral always happens *below* the node codec: pointer-cipher and
substitution counts are identical across modes, only disk-write counts
change (benchmark C7 reports both).

Read-path caches
----------------

Two opt-in plaintext cache levels (both off by default, keeping every
cipher count on the paper's cost model):

* ``record_cache_blocks`` -- the record store caches deciphered slot
  blocks, so ``get``/``range_search`` decipher each data block once per
  residency instead of once per matching record;
* ``decoded_node_cache_blocks`` -- the pager memoises decoded node
  views, so repeat visits to a hot node skip the codec's substitution
  inversions and pointer decryptions.

Invalidation is wired through every mutation path: ``put``/``delete``
refresh the record cache in the same step as the platter write, node
writes drop the block's decoded view, and a transaction rollback
discards both the dirty pages and any plaintext decoded from them --
cached plaintext can never outlive the bytes it came from.  Caching
changes *plaintext-side* work only; ciphertext traffic is byte-identical
with the caches on or off (benchmark C9 asserts both properties).
:meth:`EncipheredDatabase.stats` reports each level's hit/miss/eviction
counters and :meth:`EncipheredDatabase.clear_caches` forces a cold
start.

Concurrency
-----------

Every public operation runs under a per-database
:class:`~repro.storage.rwlock.ReadWriteLock` (exposed as ``db.lock``):
queries (``search``/``get``/``range_search``/``items``/``len``) share the
read side, mutations and commits hold the write side exclusively, and a
:meth:`transaction` scope holds the write side end to end.  Combined with
the internally locked pager, caches and disks, interleaved reader threads
can never observe a torn superblock or a half-flushed node.  Operation
*counters* (tree comparisons, substitution tallies, cipher operations)
accumulate per-thread and merge on read
(:class:`~repro.counters.ThreadSafeCounters`), so concurrent workloads
report exact totals without a lock on any hot-path increment.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.btree.tree import BTree
from repro.core.codecs import SubstitutedNodeCodec
from repro.core.packing import PointerPacking
from repro.core.records import RecordStore
from repro.counters import ThreadSafeCounters
from repro.crypto.base import CountingCipher, IntegerCipher
from repro.crypto.des import DES, kernel_decisions_snapshot
from repro.crypto.modes import CBCCipher
from repro.exceptions import CryptoError, IntegrityError, KeyNotFoundError, StorageError
from repro.obs import ObsConfig, Observability
from repro.storage.backend import StorageBackend
from repro.storage.device import BlockDevice
from repro.storage.disk import SimulatedDisk
from repro.storage.journal import ShardDelta
from repro.storage.pager import Pager
from repro.storage.rwlock import ReadWriteLock
from repro.substitution.base import KeySubstitution

_MAGIC = b"HSBT1990"


class WarmingCounters(ThreadSafeCounters):
    """Cache-warming work, counted separately from organic traffic.

    ``background_warms``/``background_completed``/``background_failed``
    track :meth:`EncipheredDatabase.warm` daemon-thread runs: started,
    finished cleanly, and died (e.g. the database closed underneath a
    still-running warm -- advisory work, so the error is recorded
    rather than raised on a thread nobody joins).
    """

    _FIELDS = (
        "nodes_warmed",
        "record_blocks_warmed",
        "background_warms",
        "background_completed",
        "background_failed",
    )


def _counting(pointer_cipher: IntegerCipher) -> CountingCipher:
    """Wrap a cipher for operation counting exactly once.

    An already-counting cipher is reused as-is; wrapping it again would
    split the C1/C3 tallies across two layers.
    """
    if isinstance(pointer_cipher, CountingCipher):
        return pointer_cipher
    return CountingCipher(pointer_cipher)


class _CommitGroup:
    """Leader/follower durability coalescing for concurrent commits.

    With group commit enabled, :meth:`EncipheredDatabase.commit` splits
    into two halves: *staging* (deferred deletes, superblock rewrite,
    pager flush -- under the write lock, cheap) and the *durability
    point* (both device syncs -- up to six fsyncs on a durable backend,
    expensive).  Each committer takes a ticket after staging; the first
    thread to need durability becomes the leader and syncs once on
    behalf of every ticket staged so far, while the rest wait on the
    condition and return when the leader's round covers them.  Eight
    concurrent committers therefore pay one or two sync rounds, not
    eight.

    The leader syncs under the database *read* lock: staging always
    happens under the write lock, so the read side excludes every
    mid-stage committer -- the platter can never seal a WAL frame
    containing half of someone's pager flush.  Lock order is strictly
    ``db.lock`` before ``_cond`` (``ticket`` runs under the write lock;
    the election section takes ``_cond`` alone), so the two can never
    deadlock.  A failed round clears leadership without advancing
    ``_durable``; the next waiter retries as leader and the error
    reaches every caller that needs it.
    """

    def __init__(self, db: "EncipheredDatabase") -> None:
        self._db = db
        self._cond = threading.Condition()
        self._staged = 0
        self._durable = 0
        self._leading = False
        #: Sync rounds a leader ran, and flushes satisfied by waiting
        #: out another thread's round (additive; reported in ``stats``).
        self.rounds = 0
        self.joins = 0

    def ticket(self) -> int:
        """Stamp the staging just performed (caller holds the write lock)."""
        with self._cond:
            self._staged += 1
            return self._staged

    def staged(self) -> int:
        """The newest ticket issued so far."""
        with self._cond:
            return self._staged

    def flush(self, target: int) -> None:
        """Block until ticket ``target`` is durable, syncing if needed.

        Must not be called by a thread holding a side of the database
        lock: the leader takes the read side itself.
        """
        waited = False
        with self._cond:
            while True:
                if self._durable >= target:
                    if waited:
                        self.joins += 1
                    return
                if not self._leading:
                    self._leading = True
                    break
                self._cond.wait()
                waited = True
        ok = False
        snap = target
        db = self._db
        try:
            with db.lock.read_locked():
                # everything staged before we got the read side is fully
                # on the device (staging holds the write side), so this
                # round can safely cover it all
                with self._cond:
                    snap = max(snap, self._staged)
                with db.obs.trace("wal.group_commit"):
                    db.records.disk.sync()
                    db.disk.sync()
            ok = True
        finally:
            with self._cond:
                self._leading = False
                if ok:
                    self._durable = max(self._durable, snap)
                    self.rounds += 1
                self._cond.notify_all()


class EncipheredDatabase:
    """Durable facade: everything needed to reopen lives on the disks."""

    def __init__(
        self,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher,
        disk: BlockDevice,
        records: RecordStore,
        super_key: bytes,
        tree: BTree,
        autocommit: bool = True,
        observability: ObsConfig | Observability | None = None,
        group_commit: bool | None = None,
        async_flush: bool = False,
    ) -> None:
        self.substitution = substitution
        self.pointer_cipher = _counting(pointer_cipher)
        self.disk = disk
        self.records = records
        self._super_key = super_key
        self.tree = tree
        #: The observability plane: latency histograms, span tracing and
        #: heat tracking behind one switch (see :mod:`repro.obs`).  The
        #: database threads its tracer through every layer it owns, so a
        #: bare ``Pager``/device built elsewhere keeps the shared
        #: disabled tracer while ours records.
        try:
            universe = substitution.key_universe()
        except Exception:
            universe = None
        if isinstance(observability, Observability):
            self.obs = observability
        else:
            self.obs = Observability(observability, universe=universe)
        tracer = self.obs.tracer
        tree.pager.tracer = tracer
        disk.tracer = tracer
        records.attach_tracer(tracer)
        #: The backend this database was created/reopened from, when
        #: known -- the home of the persisted heat blob.
        self._backend: StorageBackend | None = None
        #: When ``True`` (default) every mutation ends with a
        #: :meth:`commit`; when ``False`` the caller owns the commit
        #: points.  :meth:`transaction` toggles this per scope.
        self.autocommit = autocommit
        #: Reader--writer lock guarding every public operation; exposed so
        #: callers can pin a consistent multi-operation view (e.g. a
        #: verifying reopen) to the read side.
        self.lock = ReadWriteLock()
        #: True while the in-memory state is ahead of the last commit
        #: point: with ``autocommit=False`` a write-through mutation
        #: updates node blocks on the platter but not the superblock, so
        #: the platter alone is not a faithful snapshot until commit.
        #: Consumers that serialise the platter (the cluster's process
        #: executor) consult this to refuse or reroute.
        self.has_uncommitted_changes = False
        self._in_txn = False
        self._txn_record_puts: list[int] = []
        self._txn_record_deletes: list[int] = []
        self._txn_snapshot: tuple[int, int, list[int]] | None = None
        #: Nodes pre-decoded by :meth:`warm` (reported in :meth:`stats`).
        self.warming = WarmingCounters()
        #: Latest ``warm(background=True)`` daemon thread, for joining.
        self._warm_thread: threading.Thread | None = None
        #: Group commit: ``None`` defers to the ``REPRO_GROUP_COMMIT``
        #: environment switch (so CI can run whole suites with it on),
        #: mirroring how ``REPRO_OBS_TRACE`` governs observability.
        if group_commit is None:
            flag = os.environ.get("REPRO_GROUP_COMMIT", "")
            group_commit = flag not in ("", "0")
        self._group_commit = bool(group_commit)
        self._async_flush = bool(async_flush)
        self._commit_group = _CommitGroup(self)
        self._flush_lock = threading.Lock()
        self._flush_wakeup = threading.Event()
        self._flusher_thread: threading.Thread | None = None
        self._flusher_stop = False
        self._flush_error: BaseException | None = None
        self._async_flushes = 0
        # close() is idempotent: the flag flips before any teardown, so
        # a second close (context-manager exit after an explicit close,
        # cluster close after a per-shard close) is a clean no-op
        self._db_closed = False

    # -- superblock ------------------------------------------------------

    @staticmethod
    def _super_cipher(super_key: bytes) -> CBCCipher:
        des = DES(super_key)
        iv = des.encrypt_block(b"SUPERBLK")
        return CBCCipher(des, iv)

    def _write_superblock(self) -> None:
        payload = (
            _MAGIC
            + self.tree.root_id.to_bytes(4, "big")
            + self.tree.min_degree.to_bytes(2, "big")
            + self.tree.size.to_bytes(4, "big")
        )
        self.disk.write_block(0, self._super_cipher(self._super_key).encrypt(payload))

    @classmethod
    def _read_superblock(cls, disk: BlockDevice, super_key: bytes) -> tuple[int, int, int]:
        try:
            payload = cls._super_cipher(super_key).decrypt(disk.read_block(0))
        except CryptoError as exc:
            # a wrong key surfaces as a padding/length failure; anything
            # else (I/O errors, programming errors) must propagate as-is
            raise IntegrityError(f"superblock does not decipher: {exc}") from exc
        if payload[:8] != _MAGIC:
            raise IntegrityError("superblock magic mismatch: wrong file key?")
        root_id = int.from_bytes(payload[8:12], "big")
        min_degree = int.from_bytes(payload[12:14], "big")
        size = int.from_bytes(payload[14:18], "big")
        return root_id, min_degree, size

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(
        cls,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher,
        *,
        block_size: int = 512,
        min_degree: int = 4,
        super_key: bytes = b"\x5b\xad\xc0\xde\x5b\xad\xc0\xde",
        data_key: bytes = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1",
        record_size: int = 120,
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        record_cache_blocks: int = 0,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        backend: StorageBackend | None = None,
        observability: ObsConfig | None = None,
        group_commit: bool | None = None,
        async_flush: bool = False,
        readahead_workers: int = 0,
    ) -> "EncipheredDatabase":
        """Initialise a fresh database (block 0 reserved for the superblock).

        ``record_cache_blocks`` and ``decoded_node_cache_blocks`` size
        the two plaintext read caches (record slot blocks and decoded
        node views); both default to ``0`` -- off -- which keeps every
        cipher-operation count on the paper's cost model.
        ``decoded_node_cache_bytes`` additionally (or instead) bounds the
        decoded-node cache by the byte size of the blocks its views were
        decoded from, making its memory footprint plannable.

        ``backend`` selects where the two block devices live (``None``
        keeps the historical private in-memory disks): devices are
        opened as ``"node"`` and ``"records"``, created fresh.  On a
        durable backend every :meth:`commit` additionally syncs both
        devices -- records first, node last, so the node device's
        superblock (the authority a reopen trusts) is the commit point:
        a crash between the two syncs merely leaks record slots that no
        committed index entry references.

        ``group_commit`` (default: the ``REPRO_GROUP_COMMIT`` switch)
        coalesces concurrent explicit commits into shared sync rounds;
        ``async_flush`` additionally defers the sync to a background
        flusher.  ``readahead_workers`` sizes the pager's asynchronous
        prefetch pool (``0`` -- off -- keeps the blocking read path and
        the paper's I/O accounting untouched).
        """
        if backend is None:
            disk: BlockDevice = SimulatedDisk(block_size=block_size)
        else:
            disk = backend.open_device("node", block_size=block_size, create=True)
        reserved = disk.allocate()
        if reserved != 0:
            raise StorageError("superblock must be block 0")
        counting = _counting(pointer_cipher)
        codec = SubstitutedNodeCodec(substitution, counting, PointerPacking())
        pager = Pager(disk, cache_blocks=cache_blocks, write_back=write_back,
                      decoded_cache_blocks=decoded_node_cache_blocks,
                      decoded_cache_bytes=decoded_node_cache_bytes,
                      readahead_workers=readahead_workers)
        tree = BTree(pager=pager, codec=codec, min_degree=min_degree)
        records = RecordStore(data_key, record_size=record_size,
                              block_size=block_size,
                              cache_blocks=record_cache_blocks,
                              backend=backend,
                              create=True if backend is not None else None)
        db = cls(substitution, counting, disk, records, super_key, tree,
                 autocommit=autocommit, observability=observability,
                 group_commit=group_commit, async_flush=async_flush)
        db._backend = backend
        db.commit()  # superblock + the fresh root reach the platter
        return db

    @classmethod
    def reopen(
        cls,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher,
        disk: BlockDevice,
        records: RecordStore,
        *,
        super_key: bytes = b"\x5b\xad\xc0\xde\x5b\xad\xc0\xde",
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        record_cache_blocks: int | None = None,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        observability: ObsConfig | None = None,
        group_commit: bool | None = None,
        async_flush: bool = False,
        readahead_workers: int = 0,
    ) -> "EncipheredDatabase":
        """Rebuild a handle from the platter and the secrets alone.

        Every cache starts cold, as after a process restart.  Cache
        *capacities* follow their owners: the pager is rebuilt here, so
        ``cache_blocks``/``decoded_node_cache_blocks`` apply directly
        (the decoded level defaults off, like ``create``); the record
        store is the caller's durable object, so its configured cache
        capacity persists unless ``record_cache_blocks`` is given
        (``None`` keeps it, ``0`` forces the cache off).
        """
        root_id, min_degree, size = cls._read_superblock(disk, super_key)
        counting = _counting(pointer_cipher)
        codec = SubstitutedNodeCodec(substitution, counting, PointerPacking())
        pager = Pager(disk, cache_blocks=cache_blocks, write_back=write_back,
                      decoded_cache_blocks=decoded_node_cache_blocks,
                      decoded_cache_bytes=decoded_node_cache_bytes,
                      readahead_workers=readahead_workers)
        if record_cache_blocks is not None:
            records.cache.resize(record_cache_blocks)
        tree = BTree.attach(pager, codec, root_id, min_degree=min_degree)
        if tree.size != size:
            raise IntegrityError(
                f"superblock records {size} keys, tree holds {tree.size}"
            )
        db = cls(substitution, counting, disk, records, super_key, tree,
                 autocommit=autocommit, observability=observability,
                 group_commit=group_commit, async_flush=async_flush)
        db._make_cold()  # attach's verification walk must not pre-warm
        return db

    @classmethod
    def reopen_from_backend(
        cls,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher,
        backend: StorageBackend,
        *,
        super_key: bytes = b"\x5b\xad\xc0\xde\x5b\xad\xc0\xde",
        data_key: bytes = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1",
        block_size: int = 512,
        record_size: int = 120,
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        record_cache_blocks: int = 0,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        observability: ObsConfig | None = None,
        group_commit: bool | None = None,
        async_flush: bool = False,
        readahead_workers: int = 0,
    ) -> "EncipheredDatabase":
        """Reopen a database from its backend and the secrets alone.

        The crash-recovery entry point: opening the node device replays
        any write-ahead-log epochs a crash left sealed-but-unapplied,
        the record store rebuilds its slot metadata by scanning (the
        platter carries no metadata records), and :meth:`reopen` then
        verifies the index from the recovered superblock.  Geometry
        (``block_size``/``record_size``) must match creation -- the
        cluster manifest records it; standalone callers supply it.
        """
        disk = backend.open_device("node", block_size=block_size, create=False)
        records = RecordStore.reopen(
            data_key,
            backend,
            record_size=record_size,
            block_size=block_size,
            cache_blocks=record_cache_blocks,
        )
        db = cls.reopen(
            substitution,
            pointer_cipher,
            disk,
            records,
            super_key=super_key,
            cache_blocks=cache_blocks,
            write_back=write_back,
            autocommit=autocommit,
            record_cache_blocks=None,
            decoded_node_cache_blocks=decoded_node_cache_blocks,
            decoded_node_cache_bytes=decoded_node_cache_bytes,
            observability=observability,
            group_commit=group_commit,
            async_flush=async_flush,
            readahead_workers=readahead_workers,
        )
        db._backend = backend
        try:
            # adopt any persisted heat so warm() can pre-decode hot
            # record blocks; a missing or corrupt blob is advisory data
            # lost, never a failed reopen
            db.load_heat()
        except IntegrityError:
            pass
        return db

    # -- commit machinery ------------------------------------------------

    def commit(self) -> None:
        """Make every pending change durable.

        Applies deferred record-slot frees, re-enciphers the superblock,
        flushes dirty node pages, and -- on a durable backend -- syncs
        both devices, records first: the node sync carries the
        authoritative superblock, so it is the commit point, and a crash
        between the syncs leaves only unreferenced (leaked) record
        slots, never a superblock pointing at missing data.  Inside a
        :meth:`transaction` this establishes a new rollback point.

        With ``group_commit`` enabled (and outside a transaction), the
        expensive half -- the device syncs -- runs through the
        :class:`_CommitGroup`: concurrent committers stage under the
        write lock, then one leader syncs for the whole batch.  With
        ``async_flush`` the sync is handed to a background flusher and
        ``commit`` returns as soon as staging is done; call
        :meth:`wait_durable` for a hard durability point.  A thread that
        already holds the lock (autocommit inside a mutation, an open
        transaction scope) keeps the serial sync-under-write-lock path:
        it could never wait for a leader that needs the lock it holds.
        """
        use_group = (
            self._group_commit
            and not self._in_txn
            and not self.lock.held_by_current_thread()
        )
        with self.obs.trace("db.commit"):
            with self.lock.write_locked():
                for record_id in self._txn_record_deletes:
                    self.records.delete(record_id)
                self._txn_record_deletes = []
                self._txn_record_puts = []
                self._write_superblock()
                self.tree.pager.flush()
                if not use_group:
                    self.records.disk.sync()
                    self.disk.sync()
                ticket = self._commit_group.ticket() if use_group else 0
                # staging is the commit point for in-memory consistency;
                # group mode defers only *durability* past this line
                self.has_uncommitted_changes = False
                if self._in_txn:
                    self._txn_snapshot = self.tree.snapshot_state()
            if use_group:
                if self._async_flush:
                    self._schedule_flush()
                else:
                    self._commit_group.flush(ticket)
                    self._raise_flush_error()

    def wait_durable(self) -> None:
        """Block until every staged commit is on the platter.

        The hard durability point for ``async_flush`` mode (and a no-op
        beyond error reporting otherwise): flushes everything staged so
        far -- becoming the leader if no round is running -- and
        re-raises any error a background flush stashed.  Must not be
        called while holding the database lock.
        """
        if self._group_commit:
            self._commit_group.flush(self._commit_group.staged())
        self._raise_flush_error()

    def _schedule_flush(self) -> None:
        """Hand the staged work to the background flusher (lazily started)."""
        if self._flusher_thread is None:
            with self._flush_lock:
                if self._flusher_thread is None:
                    thread = threading.Thread(
                        target=self._flusher_loop,
                        name="repro-commit-flusher",
                        daemon=True,
                    )
                    self._flusher_thread = thread
                    thread.start()
        with self._flush_lock:
            self._async_flushes += 1
        self._flush_wakeup.set()

    def _flusher_loop(self) -> None:
        while True:
            self._flush_wakeup.wait()
            self._flush_wakeup.clear()
            if self._flusher_stop:
                return
            try:
                self._commit_group.flush(self._commit_group.staged())
            except BaseException as exc:  # stash for wait_durable/close
                with self._flush_lock:
                    self._flush_error = exc

    def _raise_flush_error(self) -> None:
        with self._flush_lock:
            exc, self._flush_error = self._flush_error, None
        if exc is not None:
            raise exc

    def _stop_flusher(self) -> None:
        self._flusher_stop = True
        self._flush_wakeup.set()
        thread = self._flusher_thread
        if thread is not None:
            thread.join(timeout=10.0)

    def rollback(self) -> None:
        """Discard every change since the last commit point.

        Only meaningful inside a :meth:`transaction`, where uncommitted
        node pages are still held dirty in the pager: they are dropped
        unwritten, the tree metadata reverts to its snapshot, record
        slots filled since the commit point are freed and deferred frees
        are forgotten.
        """
        with self.lock.write_locked():
            # checked under the lock: a foreign thread reaching here after
            # the owning transaction ended must get the error, not a
            # rollback against a stale (or None) snapshot
            if self._txn_snapshot is None:
                raise StorageError("rollback outside a transaction")
            self.tree.pager.discard_dirty()
            self.tree.restore_state(self._txn_snapshot)
            for record_id in self._txn_record_puts:
                self.records.delete(record_id)
            self._txn_record_puts = []
            self._txn_record_deletes = []
            self.has_uncommitted_changes = False  # back at the commit point
            self._txn_snapshot = self.tree.snapshot_state()

    @contextmanager
    def transaction(self) -> Iterator["EncipheredDatabase"]:
        """Scope whose mutations commit together -- or not at all.

        On entry the node pager switches to write-back with dirty pages
        pinned (they may exceed the cache bound until the scope ends), so
        nothing the scope writes reaches the platter early.  A clean exit
        commits: one superblock rewrite, one flush of each distinct dirty
        node.  An exception rolls everything back and re-raises.

        Blocks allocated by the scope and then rolled back are leaked on
        the simulated disk (never referenced again) -- space, not
        correctness.  Transactions do not nest.

        The write lock is held for the whole scope: a transaction is one
        logical write, so readers wait for its commit (or rollback) and
        can never see its intermediate states.
        """
        with self.lock.write_locked():
            if self._in_txn:
                raise StorageError("transactions do not nest")
            pager = self.tree.pager
            # pre-transaction dirt must reach the disk first: rollback
            # discards every dirty page, and pages written before this scope
            # are not ours to throw away
            pager.flush()
            saved_mode = (pager.write_back, pager.retain_dirty)
            pager.write_back = True
            pager.retain_dirty = True
            self._in_txn = True
            self._txn_snapshot = self.tree.snapshot_state()
            self._txn_record_puts = []
            self._txn_record_deletes = []
            try:
                yield self
            except BaseException:
                self.rollback()
                raise
            else:
                self.commit()
            finally:
                self._in_txn = False
                self._txn_snapshot = None
                pager.write_back, pager.retain_dirty = saved_mode
                pager.flush()  # restoring write-through must not strand dirt

    def _after_mutation(self) -> None:
        self.has_uncommitted_changes = True
        if self.autocommit and not self._in_txn:
            self.commit()

    # -- record operations (superblock kept current) -----------------------

    def insert(self, key: int, record: bytes) -> None:
        obs = self.obs
        span = obs.trace("db.put")
        with span:
            with self.lock.write_locked():
                record_id = self.records.put(record)
                try:
                    self.tree.insert(key, record_id)
                except Exception:
                    self.records.delete(record_id)
                    raise
                if self._in_txn:
                    self._txn_record_puts.append(record_id)
                self._after_mutation()
        if obs.enabled:
            obs.heat.note_op((key,), span.duration_ns)

    def search(self, key: int) -> bytes:
        obs = self.obs
        span = obs.trace("db.get")
        with span:
            with self.lock.read_locked():
                record_id = self.tree.search(key)
                result = self.records.get(record_id)
        if obs.enabled:
            obs.heat.note_op((key,), span.duration_ns)
            obs.heat.note_blocks((record_id // self.records.slots_per_block,))
        return result

    def get(self, key: int, default: bytes | None = None) -> bytes | None:
        """Like :meth:`search`, but returns ``default`` for absent keys."""
        obs = self.obs
        span = obs.trace("db.get")
        record_id = None
        with span:
            with self.lock.read_locked():
                try:
                    record_id = self.tree.search(key)
                except KeyNotFoundError:
                    result = default
                else:
                    result = self.records.get(record_id)
        if obs.enabled:
            obs.heat.note_op((key,), span.duration_ns)
            if record_id is not None:
                obs.heat.note_blocks((record_id // self.records.slots_per_block,))
        return result

    def __contains__(self, key: int) -> bool:
        with self.lock.read_locked():
            return self.tree.contains(key)

    def delete(self, key: int) -> None:
        obs = self.obs
        span = obs.trace("db.delete")
        try:
            with span:
                with self.lock.write_locked():
                    record_id = self.tree.search(key)
                    self.tree.delete(key)
                    if self._in_txn:
                        # defer the slot free: rollback must still find the bytes
                        self._txn_record_deletes.append(record_id)
                        self.has_uncommitted_changes = True
                        return
                    try:
                        self.records.delete(record_id)
                    finally:
                        # the index changed even if the slot free failed: the
                        # superblock must reflect the tree or reopen() rejects the
                        # database (the slot merely leaks until a later reuse)
                        self._after_mutation()
        finally:
            if obs.enabled:
                obs.heat.note_op((key,), span.duration_ns)

    def bulk_load(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Ingest ``(key, record)`` pairs via the bottom-up tree build.

        Orders of magnitude fewer cipher operations and disk writes than
        per-key insertion (each node is enciphered and written once);
        requires an empty database.  On failure the stored records are
        freed again and the empty database stays usable.
        """
        obs = self.obs
        span = obs.trace("db.bulk_load")
        with span:
            with self.lock.write_locked():
                pairs: list[tuple[int, int]] = []
                try:
                    for key, record in items:
                        pairs.append((key, self.records.put(record)))
                    self.tree.bulk_load(pairs)
                except Exception:
                    for _, record_id in pairs:
                        self.records.delete(record_id)
                    raise
                if self._in_txn:
                    self._txn_record_puts.extend(record_id for _, record_id in pairs)
                self._after_mutation()
        if obs.enabled:
            obs.heat.note_op([key for key, _ in pairs], span.duration_ns)

    def _in_txn_owner(self) -> bool:
        """True iff the *calling thread* owns an open transaction scope.

        A batch may only join an enclosing transaction it actually owns:
        a foreign thread observing ``_in_txn`` is merely racing someone
        else's scope, and must open its own transaction (blocking on the
        write lock) to keep its all-or-nothing guarantee.  While a
        transaction is open its owner holds the write lock exclusively,
        so "this thread holds a side of the lock" identifies the owner
        exactly.
        """
        return self._in_txn and self.lock.held_by_current_thread()

    def put_many(self, items: Iterable[tuple[int, bytes]]) -> int:
        """Insert a batch of ``(key, record)`` pairs as one atomic unit.

        One write-lock acquisition and one commit for the whole batch --
        the superblock is re-enciphered once instead of once per key, so
        a burst of k writes costs one commit's worth of overhead (and,
        under the cluster's process executor, one replica delta instead
        of k).  Runs inside :meth:`transaction` semantics: a failure
        (duplicate key, oversized record) rolls the whole batch back.
        Called inside an enclosing transaction, the batch simply joins
        it -- the outer scope owns atomicity and the commit point.
        Returns the number of pairs inserted.
        """
        pairs = list(items)
        # span only: the per-key inserts below carry the heat notes, so
        # the batch wrapper never double-counts key touches
        with self.obs.trace("db.put_many"):
            if self._in_txn_owner():
                for key, record in pairs:
                    self.insert(key, record)
                return len(pairs)
            with self.transaction():
                for key, record in pairs:
                    self.insert(key, record)
            return len(pairs)

    def delete_many(self, keys: Iterable[int]) -> int:
        """Delete a batch of keys as one atomic unit (see :meth:`put_many`).

        A missing key raises :class:`KeyNotFoundError` and rolls back
        the whole batch.  Returns the number of keys deleted.
        """
        key_list = list(keys)
        with self.obs.trace("db.delete_many"):
            if self._in_txn_owner():
                for key in key_list:
                    self.delete(key)
                return len(key_list)
            with self.transaction():
                for key in key_list:
                    self.delete(key)
            return len(key_list)

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        obs = self.obs
        span = obs.trace("db.range_search")
        with span:
            with self.lock.read_locked():
                matches = self.tree.range_search(lo, hi)
                if (
                    matches
                    and self.tree.pager.readahead_workers > 0
                    and self.records.cache.enabled
                ):
                    # one batched device round trip for every record
                    # block the gets below will touch; each uncached
                    # block is deciphered exactly once, the same count
                    # the cache-enabled serial path pays
                    spb = self.records.slots_per_block
                    self.records.warm_blocks(
                        sorted({record_id // spb for _, record_id in matches})
                    )
                result = [
                    (key, self.records.get(record_id)) for key, record_id in matches
                ]
        if obs.enabled:
            obs.heat.note_op([key for key, _ in matches], span.duration_ns)
            spb = self.records.slots_per_block
            obs.heat.note_blocks({record_id // spb for _, record_id in matches})
        return result

    def items(self) -> Iterator[tuple[int, bytes]]:
        """Every ``(key, record)`` pair in ascending key order.

        Delegates to :meth:`BTree.items`; the read lock is held while the
        iterator is live, so consume it promptly in concurrent settings.
        """
        with self.lock.read_locked():
            for key, record_id in self.tree.items():
                yield key, self.records.get(record_id)

    def __len__(self) -> int:
        with self.lock.read_locked():
            return self.tree.size

    # -- incremental replica sync ----------------------------------------

    def seal_changes(self, epoch: int) -> None:
        """Close every change journal's open set under ``epoch``.

        Called by the owner of the epoch counter (the cluster) right
        after it bumps the epoch for a committed mutation; the sealed
        sets are what :meth:`collect_delta` serves to replica consumers.
        """
        self.disk.journal.seal(epoch)
        self.records.seal_changes(epoch)

    def truncate_journals(self, epoch: int) -> None:
        """The replica consumer holds a full snapshot at ``epoch``."""
        self.disk.journal.truncate(epoch)
        self.records.truncate_journals(epoch)

    @property
    def has_unsealed_changes(self) -> bool:
        """True when committed platter bytes changed since the last seal.

        No-op commits rewrite the superblock with identical ciphertext
        and are journal-invisible, so this is a *bytes-changed* test,
        not a *commit-happened* test -- the distinction that lets the
        cluster skip epoch bumps (and replica re-syncs) for rolled-back
        and no-op transactions.
        """
        return (
            self.disk.journal.has_open
            or self.records.has_unsealed_changes
        )

    def collect_delta(self, since_epoch: int, epoch: int) -> ShardDelta | None:
        """Changes a replica at ``since_epoch`` needs to reach ``epoch``.

        Returns ``None`` when no delta can be served -- journals
        truncated past the consumer's epoch, or uncommitted state
        (dirty pages, stale superblock) making the platter
        non-authoritative -- in which case the consumer falls back to a
        full state ship.  Runs under the read lock: writers are held
        off, so the node delta, record delta and tree metadata describe
        one consistent committed state.
        """
        with self.lock.read_locked():
            if self.has_uncommitted_changes:
                return None
            if self.has_unsealed_changes:
                # committed bytes not yet sealed under any epoch (a
                # sibling writer between its commit and its seal, or a
                # rollback's freed slots): the tree metadata below would
                # describe blocks the sealed history cannot ship.  A
                # full ship -- one consistent platter snapshot -- serves
                # this sync instead.
                return None
            node = self.tree.pager.collect_delta(since_epoch)
            if node is None:
                return None
            records = self.records.collect_delta(since_epoch)
            if records is None:
                return None
            return ShardDelta(
                index=-1,  # stamped by the executor that owns shard ids
                epoch=epoch,
                node=node,
                records=records,
                tree_state=self.tree.snapshot_state(),
            )

    def apply_delta(self, delta: ShardDelta) -> None:
        """Catch a replica up in place (the consumer half of collect).

        A pure state transfer: at-rest bytes are patched below both
        ciphers, the tree metadata is installed directly, and every
        cache level drops exactly the blocks the delta replaced -- no
        cipher operation, no disk I/O statistics, no counter movement.
        """
        with self.lock.write_locked():
            pager = self.tree.pager
            pager.discard_dirty()  # replicas hold no work worth keeping
            self.disk.patch_state(delta.node.num_blocks, delta.node.block_writes)
            for block_id in delta.node.block_writes:
                pager.invalidate(block_id)
            self.records.apply_delta(delta.records)
            self.tree.restore_state(delta.tree_state)
            self.has_uncommitted_changes = False

    # -- cross-process catch-up (durable-backend support) ----------------

    def reattach(self) -> dict[str, object]:
        """Catch this handle up with commits another process made.

        The journal-driven alternative to a wholesale cold reopen: both
        devices are polled for the block ids whose at-rest bytes moved,
        and only those ids are dropped from the read caches (raw pages,
        decoded node views, plaintext record blocks); the record store's
        slot metadata is repaired by deciphering just the changed
        blocks, and the superblock is re-read to adopt the new root and
        size.  When a device cannot prove completeness (its WAL was
        checkpointed past this handle), that side falls back to a
        wholesale invalidation -- correctness never depends on the
        delta.

        Reader-role semantics (single-writer discipline): this handle
        must have no uncommitted work of its own, and its tree free-list
        is reset -- reattached handles serve reads; the writing process
        owns allocation.  Returns ``{"node_blocks", "record_blocks",
        "wholesale"}`` describing what was invalidated.
        """
        with self.lock.write_locked():
            if self.has_uncommitted_changes or self._in_txn:
                raise StorageError(
                    "reattach on a handle with uncommitted work of its own"
                )
            pager = self.tree.pager
            node_changed = self.disk.poll()
            if node_changed is None:
                pager.clear_cache()
            else:
                for block_id in node_changed:
                    pager.invalidate(block_id)
            record_changed = self.records.reattach()
            root_id, min_degree, size = self._read_superblock(
                self.disk, self._super_key
            )
            if min_degree != self.tree.min_degree:
                raise IntegrityError(
                    f"superblock records min_degree {min_degree}, "
                    f"handle was built for {self.tree.min_degree}"
                )
            self.tree.restore_state((root_id, size, []))
            return {
                "node_blocks": len(node_changed) if node_changed is not None else None,
                "record_blocks": (
                    len(record_changed) if record_changed is not None else None
                ),
                "wholesale": node_changed is None or record_changed is None,
            }

    def close(self) -> None:
        """Commit pending work and release both devices' OS resources.

        A no-op beyond the commit for in-memory backends.  Do not call
        inside a :meth:`transaction` scope.  With observability enabled
        and a known backend the accumulated record-block heat is
        persisted on the way out, so the *next* open can warm the blocks
        this run proved hot.

        Idempotent: a second call returns immediately.  Hardened for
        degraded shutdowns (a crashed worker, an injected device fault):
        every resource -- flusher thread, readahead workers, file
        handles -- is released even when the final commit or the async
        flusher drain errors, and only then does the first such error
        propagate.  Close never wedges holding half the resources.
        """
        if self._db_closed:
            return
        self._db_closed = True
        if self._warm_thread is not None:
            # a background warm may still hold the read lock; wait it
            # out (bounded -- it is advisory) before tearing devices down
            self._warm_thread.join(timeout=10.0)
        first_error: BaseException | None = None
        try:
            if self.has_uncommitted_changes:
                self.commit()
            if self._group_commit:
                # drain staged-but-unflushed durability work (async mode)
                # and surface any error a background flush stashed
                self.wait_durable()
        except BaseException as exc:
            first_error = exc
        self._stop_flusher()
        try:
            self.tree.pager.close()  # readahead workers must not outlive devices
        except BaseException as exc:
            if first_error is None:
                first_error = exc
        if self._backend is not None and self.obs.enabled and first_error is None:
            try:
                self.save_heat()
            except StorageError:
                pass  # heat is advisory; closing must not fail over it
        for device in (self.records.disk, self.disk):
            try:
                device.close()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # -- persisted heat ---------------------------------------------------

    def _heat_cipher(self) -> CBCCipher:
        des = DES(self._super_key)
        return CBCCipher(des, des.encrypt_block(b"HEATMAP0"))

    def save_heat(self) -> bool:
        """Persist the record-block heat map beside the devices.

        Enciphered under the super key like the superblock -- the heat
        map is an access-pattern oracle, exactly what the enciphered
        database exists to deny an opponent.  Returns ``False`` when no
        backend is known, ``True`` after a save.
        """
        if self._backend is None:
            return False
        blocks = self.obs.heat.combined_blocks()
        payload = json.dumps(
            {
                "version": 1,
                "blocks": {str(k): v for k, v in sorted(blocks.items())},
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._backend.save_blob("heat", self._heat_cipher().encrypt(payload))
        return True

    def load_heat(self) -> dict[int, int] | None:
        """Adopt a persisted heat map as this handle's warming seed.

        Returns the seeded ``{block_id: count}`` map, ``None`` when no
        backend or no blob exists; raises :class:`IntegrityError` for a
        blob that does not decipher or parse (wrong key or corruption).
        """
        if self._backend is None:
            return None
        blob = self._backend.load_blob("heat")
        if blob is None:
            return None
        try:
            doc = json.loads(self._heat_cipher().decrypt(blob).decode("utf-8"))
            if doc["version"] != 1:
                raise ValueError(f"unknown heat version {doc['version']!r}")
            blocks = {int(k): int(v) for k, v in doc["blocks"].items()}
        except (CryptoError, ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise IntegrityError(f"heat blob does not decipher: {exc}") from exc
        self.obs.heat.seed_blocks(blocks)
        return blocks

    # -- caches ----------------------------------------------------------

    def warm(
        self,
        levels: int = 2,
        hot_record_blocks: int = 0,
        background: bool = False,
    ) -> int:
        """Pre-decode the root's top ``levels`` into the node caches.

        Closes part of the cold-reopen gap without waiting for organic
        traffic (benchmark C9 measured warm caches ~28x faster than
        cold).  The work is honest traversal work -- counted like any
        read -- and is additionally tallied under ``stats()``'s
        ``cache_warming`` so operators can see prefetch cost apart from
        serving cost.

        ``hot_record_blocks > 0`` additionally pre-decodes up to that
        many of the hottest record blocks known to the heat map
        (live traffic plus any persisted heat adopted at reopen) into
        the record cache.  Returns the total number of nodes and record
        blocks touched.

        ``background=True`` runs the same warm on a daemon thread and
        returns 0 immediately: a reopen can start serving at once while
        the prefetch fills caches behind it.  The thread takes the
        ordinary read lock, so it interleaves with readers and yields to
        writers like any traversal; progress is visible in
        ``stats()["cache_warming"]`` (``background_warms`` started,
        ``background_completed`` finished, plus the usual warmed
        counts).  The latest thread is kept on ``_warm_thread`` so tests
        and shutdown paths can ``join`` it.
        """
        if background:
            self.warming.bump("background_warms")

            def _run() -> None:
                try:
                    self._warm_locked(levels, hot_record_blocks)
                except BaseException:
                    # advisory work on an unjoined thread: a database
                    # closed mid-warm must not spew to stderr
                    self.warming.bump("background_failed")
                else:
                    self.warming.bump("background_completed")

            thread = threading.Thread(
                target=_run, name="repro-cache-warm", daemon=True
            )
            self._warm_thread = thread
            thread.start()
            return 0
        return self._warm_locked(levels, hot_record_blocks)

    def _warm_locked(self, levels: int, hot_record_blocks: int) -> int:
        with self.lock.read_locked():
            warmed = self.tree.warm(levels)
            warmed_blocks = 0
            if hot_record_blocks > 0:
                warmed_blocks = self.records.warm_blocks(
                    self.obs.heat.hot_blocks(hot_record_blocks)
                )
        self.warming.bump("nodes_warmed", warmed)
        if warmed_blocks:
            self.warming.bump("record_blocks_warmed", warmed_blocks)
        return warmed + warmed_blocks

    def cache_config(self) -> dict[str, int]:
        """Capacity (in blocks) of each read-path cache level."""
        return {
            "node_raw_blocks": self.tree.pager.capacity,
            "node_decoded_blocks": self.tree.pager.decoded.capacity,
            "node_decoded_max_bytes": self.tree.pager.decoded.max_bytes,
            "record_plaintext_blocks": self.records.cache.capacity,
        }

    def clear_caches(self) -> None:
        """Drop every cached page and plaintext block (cold-start support).

        Outside a transaction, dirty node pages are flushed first --
        clearing caches must never lose written data.  Inside a
        :meth:`transaction` scope flushing would push uncommitted pages
        past the rollback point, so only *clean* raw pages and the
        derived plaintext levels (decoded views, record slots) are
        dropped; uncommitted dirt stays pinned and discardable.  Either
        way the call is safe mid-workload.
        """
        with self.lock.write_locked():
            if self._in_txn:
                self.tree.pager.drop_clean_cache()
            else:
                self.tree.pager.clear_cache()
            self.records.clear_cache()

    def _make_cold(self) -> None:
        """Forget cache contents *and* cache statistics.

        Reopen support: the verification walks a reopen performs (tree
        size recovery, cluster routing validation) read through the
        caches like any traversal; this forgets both what they warmed
        and what they counted, so a reopened handle observes the same
        cold caches a process restart would.
        """
        pager = self.tree.pager
        pager.clear_cache()
        pager.reset_stats()
        self.records.clear_cache()
        self.records.cache.stats.reset()

    def stats(self) -> dict[str, object]:
        """Point-in-time rollup of every counter the database owns.

        One nesting level per subsystem; all leaves are numbers, so the
        cluster layer (and benchmark reporters) can aggregate dicts from
        many databases by summing leaf-wise.
        """
        with self.lock.read_locked():
            disk, rdisk = self.disk.stats, self.records.disk.stats
            pager = self.tree.pager.stats
            return {
                "size": self.tree.size,
                "node_disk": {
                    "reads": disk.reads,
                    "writes": disk.writes,
                    "overwrites": disk.overwrites,
                    "bytes_read": disk.bytes_read,
                    "bytes_written": disk.bytes_written,
                    "read_time_s": disk.read_time_s,
                    "write_time_s": disk.write_time_s,
                    "fsyncs": disk.fsyncs,
                    "header_flips": disk.header_flips,
                },
                "record_disk": {
                    "reads": rdisk.reads,
                    "writes": rdisk.writes,
                    "overwrites": rdisk.overwrites,
                    "bytes_read": rdisk.bytes_read,
                    "bytes_written": rdisk.bytes_written,
                    "read_time_s": rdisk.read_time_s,
                    "write_time_s": rdisk.write_time_s,
                    "fsyncs": rdisk.fsyncs,
                    "header_flips": rdisk.header_flips,
                },
                "pager": {
                    "hits": pager.hits,
                    "misses": pager.misses,
                    "write_requests": pager.write_requests,
                    "disk_writes": pager.disk_writes,
                    "dirty_evictions": pager.dirty_evictions,
                    "readaheads": pager.readaheads,
                    "readahead_loads": pager.readahead_loads,
                    "readahead_drops": pager.readahead_drops,
                },
                "commit_group": {
                    "rounds": self._commit_group.rounds,
                    "joins": self._commit_group.joins,
                    "async_flushes": self._async_flushes,
                },
                "cipher_kernel": kernel_decisions_snapshot(),
                "durability": {
                    "node": self.disk.durability_snapshot(),
                    "records": self.records.disk.durability_snapshot(),
                },
                # injected-fault and retry accounting (PR 10); all-zero
                # -- but present and same-shaped, for the leaf-wise
                # cluster merge -- when no fault plan is armed
                "faults": {
                    "node": self.disk.fault_snapshot(),
                    "records": self.records.disk.fault_snapshot(),
                },
                "record_cipher": self.records.cipher_counts.snapshot(),
                "record_cache": self.records.cache.stats.snapshot(),
                "cache_warming": self.warming.snapshot(),
                # bytes_cached is a gauge (current footprint under the
                # byte budget), reported beside the cache's counters
                "node_decoded_cache": {
                    **self.tree.pager.decoded.stats.snapshot(),
                    "bytes_cached": self.tree.pager.decoded.total_bytes,
                },
                "pointer_cipher": {
                    "encryptions": self.pointer_cipher.counts.encryptions,
                    "decryptions": self.pointer_cipher.counts.decryptions,
                },
                "substitution": {
                    "substitutions": self.substitution.counters.substitutions,
                    "inversions": self.substitution.counters.inversions,
                },
                "tree": {
                    "comparisons": self.tree.counters.comparisons,
                    "nodes_visited": self.tree.counters.nodes_visited,
                    "splits": self.tree.counters.splits,
                    "merges": self.tree.counters.merges,
                    "borrows": self.tree.counters.borrows,
                },
                # latency histograms + key-range heat; every leaf is an
                # additive number, so worker deltas harvest and cluster
                # rollups merge exactly like the counters above
                "observability": self.obs.snapshot(),
            }
