"""The paper's systems, assembled from the substrates.

* :class:`~repro.core.enciphered_btree.EncipheredBTree` -- the
  Hardjono--Seberry scheme: node blocks store ``[f(k), E(b || a || p)]``
  triplets; keys are disguised, both pointers ride in one cryptogram
  bound to the block number.
* :class:`~repro.core.bayer_metzger.BayerMetzgerBTree` -- the baseline:
  every triplet enciphered under a per-page key derived from the page id
  (lazy "binary search-and-decrypt" or whole-page decryption).
* :class:`~repro.core.security_filter.SecurityFilter` -- the §4.3
  deployment: an order-preserving disguise plus record encryption and
  cryptographic checksums, retrofitted *in front of* an unmodified DBMS.
"""

from repro.core.codecs import (
    PageKeyNodeCodec,
    SubstitutedNodeCodec,
    WholePageNodeCodec,
)
from repro.core.database import EncipheredDatabase
from repro.core.records import RecordStore
from repro.core.enciphered_btree import EncipheredBTree, TraversalCost
from repro.core.bayer_metzger import BayerMetzgerBTree
from repro.core.multilevel_store import (
    MultilevelEncipheredBTree,
    MultilevelRecordStore,
)
from repro.core.plain import PlainBTreeSystem
from repro.core.security_filter import SecurityFilter, SealedRecord

__all__ = [
    "BayerMetzgerBTree",
    "EncipheredBTree",
    "EncipheredDatabase",
    "MultilevelEncipheredBTree",
    "MultilevelRecordStore",
    "PageKeyNodeCodec",
    "PlainBTreeSystem",
    "RecordStore",
    "SealedRecord",
    "SecurityFilter",
    "SubstitutedNodeCodec",
    "TraversalCost",
    "WholePageNodeCodec",
]
