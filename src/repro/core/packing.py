"""Packing of ``b || a || p`` into one cipher integer.

§3 fixes the enciphered triplet format as ``f(k), E(b || a || p)``: the
block number ``b``, data pointer ``a`` and tree pointer ``p`` are
concatenated and encrypted together.  Binding ``b`` into the cryptogram
means a cryptogram lifted from one block fails validation in another --
the codec raises :class:`~repro.exceptions.IntegrityError` on mismatch.

Pointers are stored shifted by one so that id ``0`` is representable and
``0`` itself can serve as the null pointer (leaves have no tree pointer;
the unaccompanied pointer has no data pointer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CodecError

#: Stored value meaning "no pointer".
NULL_POINTER: int | None = None


@dataclass(frozen=True)
class PointerPacking:
    """Field widths for the packed ``b || a || p`` integer."""

    block_bits: int = 32
    pointer_bits: int = 32

    @property
    def total_bits(self) -> int:
        return self.block_bits + 2 * self.pointer_bits

    def required_modulus(self) -> int:
        """Smallest exclusive cipher modulus able to carry a packed value."""
        return 1 << self.total_bits

    def _check_field(self, value: int | None, bits: int, label: str) -> int:
        stored = 0 if value is None else value + 1
        if not 0 <= stored < (1 << bits):
            raise CodecError(f"{label} {value} does not fit {bits} bits")
        return stored

    def pack(self, block_id: int, data_pointer: int | None, tree_pointer: int | None) -> int:
        """``b || a || p`` with null-aware one-shifted pointers."""
        if not 0 <= block_id < (1 << self.block_bits):
            raise CodecError(f"block id {block_id} does not fit {self.block_bits} bits")
        a = self._check_field(data_pointer, self.pointer_bits, "data pointer")
        p = self._check_field(tree_pointer, self.pointer_bits, "tree pointer")
        return (
            (block_id << (2 * self.pointer_bits))
            | (a << self.pointer_bits)
            | p
        )

    def unpack(self, packed: int) -> tuple[int, int | None, int | None]:
        """Invert :meth:`pack`; returns ``(block_id, data_ptr, tree_ptr)``."""
        if not 0 <= packed < self.required_modulus():
            raise CodecError(f"packed value {packed} out of range")
        mask = (1 << self.pointer_bits) - 1
        p = packed & mask
        a = (packed >> self.pointer_bits) & mask
        block_id = packed >> (2 * self.pointer_bits)
        return (
            block_id,
            None if a == 0 else a - 1,
            None if p == 0 else p - 1,
        )
