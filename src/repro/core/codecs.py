"""Enciphered node codecs: the paper's layout and the baseline's.

Both codecs return *lazy* views, so the cost of reading a node is exactly
the cost of the fields the traversal touches:

* :class:`SubstitutedNodeCodec` (Hardjono--Seberry, §3/§4): stored keys
  are disguises ``f(k)`` -- inverting one is arithmetic, not decryption --
  and each triplet's pointers live in one cryptogram ``E(b || a || p)``.
  Navigating a node costs zero decryptions for the keys and exactly one
  decryption for the chosen pointer.
* :class:`PageKeyNodeCodec` (Bayer--Metzger, §2): every triplet (key and
  pointers together) is enciphered under the page key derived from the
  block id.  Even *looking at* a key costs a decryption, so binary search
  pays ``~log2(n)`` triplet decryptions per node -- the cost the paper
  sets out to remove.
"""

from __future__ import annotations


from repro.btree.codec import (
    HEADER_BYTES,
    PlainNodeCodec,
    PlainNodeView,
    decode_header,
    encode_header,
)
from repro.btree.node import Node
from repro.core.packing import PointerPacking
from repro.counters import ThreadSafeCounters
from repro.crypto.base import CryptoOpCounts, IntegerCipher
from repro.crypto.des import DES
from repro.crypto.pagekey import PageKeyScheme
from repro.exceptions import CodecError, IntegrityError
from repro.storage.layout import bytes_for_value
from repro.substitution.base import KeySubstitution


# ---------------------------------------------------------------------------
# Hardjono--Seberry layout: [f(k) ...][E(b||a||p) ...][E(b||0||p_extra)]
# ---------------------------------------------------------------------------


class SubstitutedNodeCodec:
    """The paper's node layout: disguised keys, one cryptogram per triplet.

    Parameters
    ----------
    substitution:
        The key disguise ``f`` (any :class:`KeySubstitution`).
    pointer_cipher:
        Integer cipher for the packed pointer pairs; its modulus must
        exceed ``packing.required_modulus()``.  Wrap it in a
        :class:`~repro.crypto.base.CountingCipher` to meter experiments.
    packing:
        Bit widths of the ``b || a || p`` packing.
    extra_pointer_mode:
        How the unaccompanied tree pointer (the one without a key and
        data pointer) is protected.  ``"encrypt"`` (default, secure)
        packs it into a cryptogram like every other pointer.
        ``"disguise"`` follows the paper's literal sentence -- *"should
        simply be disguised through the function f"* -- passing the block
        id through the key disguise.  The ablation exists to measure what
        that sentence costs: the disguised pointer reveals one true edge
        per node to anyone who breaks the (weak) disguise, and it only
        works while block ids stay inside the disguise's key universe.
    """

    _EXTRA_MODES = ("encrypt", "disguise")

    def __init__(
        self,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher,
        packing: PointerPacking | None = None,
        extra_pointer_mode: str = "encrypt",
    ) -> None:
        if extra_pointer_mode not in self._EXTRA_MODES:
            raise CodecError(
                f"extra_pointer_mode must be one of {self._EXTRA_MODES}, "
                f"got {extra_pointer_mode!r}"
            )
        self.substitution = substitution
        self.cipher = pointer_cipher
        self.packing = packing or PointerPacking()
        self.extra_pointer_mode = extra_pointer_mode
        if pointer_cipher.modulus < self.packing.required_modulus():
            raise CodecError(
                f"cipher modulus {pointer_cipher.modulus.bit_length()} bits cannot "
                f"carry {self.packing.total_bits}-bit packed pointers"
            )
        self.key_bytes = bytes_for_value(substitution.max_substitute())
        self.cryptogram_bytes = bytes_for_value(pointer_cipher.modulus - 1)

    # -- encode ----------------------------------------------------------

    def encode(self, node: Node) -> bytes:
        node.check()
        out = encode_header(node)
        for key in node.keys:
            out.extend(self.substitution.substitute(key).to_bytes(self.key_bytes, "big"))
        for i, value in enumerate(node.values):
            tree_ptr = None if node.is_leaf else node.children[i]
            packed = self.packing.pack(node.node_id, value, tree_ptr)
            out.extend(
                self.cipher.encrypt_int(packed).to_bytes(self.cryptogram_bytes, "big")
            )
        if not node.is_leaf:
            if self.extra_pointer_mode == "disguise":
                disguised = self.substitution.substitute(node.children[-1])
                out.extend(disguised.to_bytes(self.key_bytes, "big"))
            else:
                packed = self.packing.pack(node.node_id, None, node.children[-1])
                out.extend(
                    self.cipher.encrypt_int(packed).to_bytes(self.cryptogram_bytes, "big")
                )
        return bytes(out)

    def decode(self, node_id: int, data: bytes) -> "SubstitutedNodeView":
        return SubstitutedNodeView(self, node_id, data)

    def node_overhead_bytes(self, num_keys: int, is_leaf: bool) -> int:
        size = HEADER_BYTES + num_keys * (self.key_bytes + self.cryptogram_bytes)
        if not is_leaf:
            size += (
                self.key_bytes
                if self.extra_pointer_mode == "disguise"
                else self.cryptogram_bytes
            )
        return size


class SubstitutedNodeView:
    """Lazy reader over the Hardjono--Seberry layout.

    Key access performs a disguise inversion (cheap arithmetic, counted by
    the substitution's counters); pointer access decrypts the relevant
    cryptogram once and caches it for the lifetime of the view.

    Views are immutable readers over immutable bytes, so one view may be
    shared across reader threads (the pager's decoded cache does this):
    racing accesses to a lazily-cached field may compute it twice, but
    both computations yield identical values, so either fill is correct.
    """

    def __init__(self, codec: SubstitutedNodeCodec, node_id: int, data: bytes) -> None:
        self._codec = codec
        self._data = data
        self.node_id = node_id
        self.is_leaf, self.num_keys = decode_header(data)
        self._keys_off = HEADER_BYTES
        self._crypt_off = self._keys_off + self.num_keys * codec.key_bytes
        expected = codec.node_overhead_bytes(self.num_keys, self.is_leaf)
        if len(data) < expected:
            raise CodecError(
                f"node {node_id}: {len(data)} bytes, layout needs {expected}"
            )
        self._key_cache: dict[int, int] = {}
        self._triplet_cache: dict[int, tuple[int | None, int | None]] = {}

    # -- keys ------------------------------------------------------------

    def stored_key_at(self, i: int) -> int:
        if not 0 <= i < self.num_keys:
            raise CodecError(f"key index {i} out of range")
        start = self._keys_off + i * self._codec.key_bytes
        return int.from_bytes(self._data[start : start + self._codec.key_bytes], "big")

    def key_at(self, i: int) -> int:
        cached = self._key_cache.get(i)
        if cached is None:
            cached = self._codec.substitution.invert(self.stored_key_at(i))
            self._key_cache[i] = cached
        return cached

    # -- pointers ----------------------------------------------------------

    def _triplet(self, i: int) -> tuple[int | None, int | None]:
        """Decrypt cryptogram ``i`` (0..num_keys-1 triplets, num_keys=extra)."""
        cached = self._triplet_cache.get(i)
        if cached is not None:
            return cached
        width = self._codec.cryptogram_bytes
        start = self._crypt_off + i * width
        cryptogram = int.from_bytes(self._data[start : start + width], "big")
        block_id, data_ptr, tree_ptr = self._codec.packing.unpack(
            self._codec.cipher.decrypt_int(cryptogram)
        )
        if block_id != self.node_id:
            raise IntegrityError(
                f"cryptogram bound to block {block_id} read from block {self.node_id}"
            )
        self._triplet_cache[i] = (data_ptr, tree_ptr)
        return (data_ptr, tree_ptr)

    def value_at(self, i: int) -> int:
        if not 0 <= i < self.num_keys:
            raise CodecError(f"value index {i} out of range")
        data_ptr, _ = self._triplet(i)
        if data_ptr is None:
            raise CodecError(f"triplet {i} of node {self.node_id} has no data pointer")
        return data_ptr

    def child_at(self, i: int) -> int:
        if self.is_leaf:
            raise CodecError(f"leaf {self.node_id} has no children")
        if not 0 <= i <= self.num_keys:
            raise CodecError(f"child index {i} out of range")
        if i == self.num_keys and self._codec.extra_pointer_mode == "disguise":
            return self._disguised_extra_pointer()
        _, tree_ptr = self._triplet(i)
        if tree_ptr is None:
            raise CodecError(f"triplet {i} of node {self.node_id} has no tree pointer")
        return tree_ptr

    def _disguised_extra_pointer(self) -> int:
        """§3 ablation: the unaccompanied pointer went through ``f``."""
        width = self._codec.key_bytes
        start = self._crypt_off + self.num_keys * self._codec.cryptogram_bytes
        stored = int.from_bytes(self._data[start : start + width], "big")
        return self._codec.substitution.invert(stored)

    def to_node(self) -> Node:
        keys = [self.key_at(i) for i in range(self.num_keys)]
        values = [self.value_at(i) for i in range(self.num_keys)]
        children: list[int] = []
        if not self.is_leaf:
            children = [self.child_at(i) for i in range(self.num_keys + 1)]
        return Node(
            node_id=self.node_id,
            is_leaf=self.is_leaf,
            keys=keys,
            values=values,
            children=children,
        )


# ---------------------------------------------------------------------------
# Bayer--Metzger layout: per-page key, every triplet fully enciphered.
# ---------------------------------------------------------------------------


class TripletOpCounts(ThreadSafeCounters):
    """Triplet-granularity cipher operations (the paper's cost unit).

    Thread-safe (per-thread accumulation, merged reads) like every
    counter on the concurrent read path.
    """

    _FIELDS = ("encryptions", "decryptions")


class PageKeyNodeCodec:
    """Baseline layout: ``T(k_i || a_i || p_i, K_Pi)`` per triplet.

    The page key ``K_Pi`` is derived from the block id via the
    Bayer--Metzger scheme, so the ciphertext of a triplet is bound to its
    page implicitly: the same triplet re-encrypted in a different block
    yields different bytes, and moving a triplet forces decrypt +
    re-encrypt (the §3 reorganisation overhead).

    The node header is enciphered too (the whole page is ciphertext on
    disk); decoding pays one block decryption up front, then one triplet
    decryption per *distinct* key/pointer access.
    """

    def __init__(
        self,
        scheme: PageKeyScheme,
        key_bytes: int = 8,
        pointer_bytes: int = 4,
    ) -> None:
        self.scheme = scheme
        self.key_bytes = key_bytes
        self.pointer_bytes = pointer_bytes
        self.triplet_counts = TripletOpCounts()
        self.block_counts = CryptoOpCounts()
        plain = key_bytes + 2 * pointer_bytes
        self.triplet_blocks = (plain + 7) // 8
        self.triplet_cipher_bytes = 8 * self.triplet_blocks

    # -- per-page cipher -----------------------------------------------------

    def _page_des(self, node_id: int) -> DES:
        return DES(self.scheme.derive_page_key(node_id).key)

    @staticmethod
    def _pad8(plain: bytes) -> bytes:
        if len(plain) % 8:
            return plain + b"\x00" * (8 - len(plain) % 8)
        return plain

    def _encrypt_chunk(self, des: DES, plain: bytes) -> bytes:
        plain = self._pad8(plain)
        self.block_counts.bump("encryptions", len(plain) // 8)
        return des.encrypt_blocks(plain)

    def _decrypt_chunk(self, des: DES, cipher: bytes) -> bytes:
        self.block_counts.bump("decryptions", len(cipher) // 8)
        return des.decrypt_blocks(cipher)

    # -- triplet serialisation -------------------------------------------

    def _pack_triplet(self, key: int, value: int | None, child: int | None) -> bytes:
        out = bytearray()
        out.extend(key.to_bytes(self.key_bytes, "big"))
        out.extend((0 if value is None else value + 1).to_bytes(self.pointer_bytes, "big"))
        out.extend((0 if child is None else child + 1).to_bytes(self.pointer_bytes, "big"))
        return bytes(out)

    def _unpack_triplet(self, data: bytes) -> tuple[int, int | None, int | None]:
        key = int.from_bytes(data[: self.key_bytes], "big")
        off = self.key_bytes
        a = int.from_bytes(data[off : off + self.pointer_bytes], "big")
        off += self.pointer_bytes
        p = int.from_bytes(data[off : off + self.pointer_bytes], "big")
        return key, (a - 1 if a else None), (p - 1 if p else None)

    # -- codec API ---------------------------------------------------------

    def encode(self, node: Node) -> bytes:
        node.check()
        des = self._page_des(node.node_id)
        # One contiguous plaintext buffer, one bulk encryption: ECB over
        # 8-aligned chunks commutes with concatenation, so the ciphertext
        # is byte-identical to encrypting header and triplets separately
        # while handing the kernel the whole page at once.
        chunks = [self._pad8(bytes(encode_header(node)))]
        triplets = 0
        for i, (key, value) in enumerate(zip(node.keys, node.values)):
            child = None if node.is_leaf else node.children[i]
            chunks.append(self._pad8(self._pack_triplet(key, value, child)))
            triplets += 1
        if not node.is_leaf:
            chunks.append(self._pad8(self._pack_triplet(0, None, node.children[-1])))
            triplets += 1
        plain = b"".join(chunks)
        self.block_counts.bump("encryptions", len(plain) // 8)
        self.triplet_counts.bump("encryptions", triplets)
        return des.encrypt_blocks(plain)

    def decode(self, node_id: int, data: bytes) -> "PageKeyNodeView":
        return PageKeyNodeView(self, node_id, data)

    def node_overhead_bytes(self, num_keys: int, is_leaf: bool) -> int:
        size = 8  # enciphered header block
        size += num_keys * self.triplet_cipher_bytes
        if not is_leaf:
            size += self.triplet_cipher_bytes
        return size


class PageKeyNodeView:
    """Lazy binary-search-and-decrypt reader over the baseline layout."""

    def __init__(self, codec: PageKeyNodeCodec, node_id: int, data: bytes) -> None:
        self._codec = codec
        self._data = data
        self.node_id = node_id
        self._des = codec._page_des(node_id)
        header = codec._decrypt_chunk(self._des, data[:8])
        self.is_leaf, self.num_keys = decode_header(header[:HEADER_BYTES])
        self._cache: dict[int, tuple[int, int | None, int | None]] = {}

    def _triplet(self, i: int) -> tuple[int, int | None, int | None]:
        cached = self._cache.get(i)
        if cached is not None:
            return cached
        width = self._codec.triplet_cipher_bytes
        start = 8 + i * width
        if start + width > len(self._data):
            raise CodecError(f"triplet {i} beyond node {self.node_id} bounds")
        plain = self._codec._decrypt_chunk(self._des, self._data[start : start + width])
        self._codec.triplet_counts.bump("decryptions")
        triplet = self._codec._unpack_triplet(plain)
        self._cache[i] = triplet
        return triplet

    def key_at(self, i: int) -> int:
        if not 0 <= i < self.num_keys:
            raise CodecError(f"key index {i} out of range")
        return self._triplet(i)[0]

    def stored_key_at(self, i: int) -> int:
        """The at-rest form is ciphertext; expose the raw bytes as an int."""
        width = self._codec.triplet_cipher_bytes
        start = 8 + i * width
        return int.from_bytes(self._data[start : start + width], "big")

    def value_at(self, i: int) -> int:
        if not 0 <= i < self.num_keys:
            raise CodecError(f"value index {i} out of range")
        value = self._triplet(i)[1]
        if value is None:
            raise CodecError(f"triplet {i} of node {self.node_id} has no data pointer")
        return value

    def child_at(self, i: int) -> int:
        if self.is_leaf:
            raise CodecError(f"leaf {self.node_id} has no children")
        if not 0 <= i <= self.num_keys:
            raise CodecError(f"child index {i} out of range")
        child = self._triplet(i)[2]
        if child is None:
            raise CodecError(f"triplet {i} of node {self.node_id} has no tree pointer")
        return child

    def _decrypt_missing(self) -> None:
        """Batch-decrypt every not-yet-cached triplet in one bulk call.

        Gathers the ciphertext of the missing triplets into a single
        contiguous buffer so the kernel sees one array instead of one
        8/16-byte call per triplet.  Cipher accounting is identical to
        the lazy path: already-cached triplets are not re-decrypted, so
        a ``to_node()`` after a partial probe costs exactly the same
        block and triplet decryptions as probing the rest one by one.
        """
        total = self.num_keys + (0 if self.is_leaf else 1)
        missing = [i for i in range(total) if i not in self._cache]
        if not missing:
            return
        width = self._codec.triplet_cipher_bytes
        end = 8 + total * width
        if end > len(self._data):
            raise CodecError(f"triplet {total - 1} beyond node {self.node_id} bounds")
        cipher = b"".join(
            self._data[8 + i * width : 8 + (i + 1) * width] for i in missing
        )
        plain = self._codec._decrypt_chunk(self._des, cipher)
        self._codec.triplet_counts.bump("decryptions", len(missing))
        for pos, i in enumerate(missing):
            self._cache[i] = self._codec._unpack_triplet(
                plain[pos * width : (pos + 1) * width]
            )

    def to_node(self) -> Node:
        self._decrypt_missing()
        keys = [self.key_at(i) for i in range(self.num_keys)]
        values = [self.value_at(i) for i in range(self.num_keys)]
        children: list[int] = []
        if not self.is_leaf:
            children = [self.child_at(i) for i in range(self.num_keys + 1)]
        return Node(
            node_id=self.node_id,
            is_leaf=self.is_leaf,
            keys=keys,
            values=values,
            children=children,
        )


# ---------------------------------------------------------------------------
# Bayer--Metzger whole-page layout: C = T(M, K_Pi) over the entire node.
# ---------------------------------------------------------------------------


class WholePageNodeCodec:
    """Baseline ablation: the whole node is one ciphertext.

    The simplest reading of Bayer & Metzger's ``C_Pi = T(M_Pi, K_Pi)``:
    serialise the node in the plain layout and encipher the entire page
    under the page key.  Any access -- even a single key probe -- pays a
    full-page decryption, so the per-visit cost is the node's block count
    rather than the probe count.  Experiment A1 compares this against the
    lazy per-triplet layout.

    Cost accounting: ``triplet_counts`` tallies whole triplets carried
    through the cipher (all of them, on every encode/decode) and
    ``block_counts`` the underlying cipher blocks, so the facade's
    snapshots stay comparable across layouts.
    """

    def __init__(
        self,
        scheme: PageKeyScheme,
        key_bytes: int = 8,
        pointer_bytes: int = 4,
    ) -> None:
        self.scheme = scheme
        self.inner = PlainNodeCodec(key_bytes=key_bytes, pointer_bytes=pointer_bytes)
        self.key_bytes = key_bytes
        self.pointer_bytes = pointer_bytes
        self.triplet_counts = TripletOpCounts()
        self.block_counts = CryptoOpCounts()

    def encode(self, node: Node) -> bytes:
        plain = self.inner.encode(node)
        ciphertext = self.scheme.encrypt_page(node.node_id, plain)
        self.triplet_counts.bump("encryptions", node.num_keys + (0 if node.is_leaf else 1))
        self.block_counts.bump("encryptions", (len(ciphertext) + 7) // 8)
        return ciphertext

    def decode(self, node_id: int, data: bytes) -> PlainNodeView:
        plain = self.scheme.decrypt_page(node_id, data)
        view = self.inner.decode(node_id, plain)
        self.triplet_counts.bump("decryptions", view.num_keys + (0 if view.is_leaf else 1))
        self.block_counts.bump("decryptions", (len(data) + 7) // 8)
        return view

    def node_overhead_bytes(self, num_keys: int, is_leaf: bool) -> int:
        plain = self.inner.node_overhead_bytes(num_keys, is_leaf)
        if self.scheme.mode == "progressive":
            return plain  # length-preserving
        return (plain // 8 + 1) * 8  # PKCS#7 always appends 1..8 bytes
