"""An unprotected B-Tree system -- the "commercial off-the-shelf DBMS".

Two roles:

* the plaintext baseline in experiments (Figure 1 "before", C1's
  zero-decryption floor);
* the *unmodifiable DBMS* the §4.3 security filter is retrofitted onto:
  the filter hands it already-substituted keys and already-encrypted
  record payloads, and it organises them with ordinary B-Tree mechanics,
  oblivious to any cryptography (it has no low-level hooks at all).
"""

from __future__ import annotations

from repro.btree.codec import PlainNodeCodec
from repro.btree.tree import BTree
from repro.exceptions import BTreeError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import Pager


class PlainBTreeSystem:
    """Plaintext keys, plaintext pointers, records as opaque bytes.

    Records are stored in cleartext slots; whatever confidentiality the
    payload has must be provided by the caller (which is precisely what
    the security filter does).
    """

    def __init__(
        self,
        *,
        block_size: int = 4096,
        min_degree: int | None = None,
        cache_blocks: int = 0,
        key_bytes: int = 8,
        record_size: int = 120,
    ) -> None:
        self.codec = PlainNodeCodec(key_bytes=key_bytes)
        self.disk = SimulatedDisk(block_size=block_size)
        self.pager = Pager(self.disk, cache_blocks=cache_blocks)
        if min_degree is None:
            min_degree = self._fit_min_degree(block_size)
        self.tree = BTree(pager=self.pager, codec=self.codec, min_degree=min_degree)
        self.record_size = record_size
        self._record_disk = SimulatedDisk(block_size=block_size)
        self._slots_per_block = (block_size - 2) // (record_size + 2)
        self._records: list[int] = []  # block ids, for slot arithmetic
        self._slot_count = 0

    def _fit_min_degree(self, block_size: int) -> int:
        t = 2
        while self.codec.node_overhead_bytes(2 * (t + 1) - 1, is_leaf=False) <= block_size:
            t += 1
        if self.codec.node_overhead_bytes(2 * t - 1, is_leaf=False) > block_size:
            raise BTreeError(f"block size {block_size} cannot hold a degree-2 node")
        return t

    # -- record storage (cleartext slots) ------------------------------------

    def _store_record(self, payload: bytes) -> int:
        if len(payload) > self.record_size:
            raise BTreeError(
                f"record of {len(payload)} bytes exceeds slot of {self.record_size}"
            )
        slot_index = self._slot_count
        block_index, slot = divmod(slot_index, self._slots_per_block)
        encoded = len(payload).to_bytes(2, "big") + payload.ljust(self.record_size, b"\x00")
        if block_index >= len(self._records):
            self._records.append(self._record_disk.allocate())
            self._record_disk.write_block(self._records[block_index], encoded)
        else:
            existing = self._record_disk.read_block(self._records[block_index])
            self._record_disk.write_block(self._records[block_index], existing + encoded)
        self._slot_count += 1
        return slot_index

    def _fetch_record(self, slot_index: int) -> bytes:
        block_index, slot = divmod(slot_index, self._slots_per_block)
        data = self._record_disk.read_block(self._records[block_index])
        width = self.record_size + 2
        raw = data[slot * width : (slot + 1) * width]
        length = int.from_bytes(raw[:2], "big")
        return raw[2 : 2 + length]

    # -- DBMS API --------------------------------------------------------

    def insert(self, key: int, record: bytes) -> None:
        self.tree.insert(key, self._store_record(record))

    def search(self, key: int) -> bytes:
        return self._fetch_record(self.tree.search(key))

    def delete(self, key: int) -> None:
        self.tree.delete(key)

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        return [
            (key, self._fetch_record(record_id))
            for key, record_id in self.tree.range_search(lo, hi)
        ]

    def __len__(self) -> int:
        return self.tree.size
