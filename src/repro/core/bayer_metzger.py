"""The Bayer--Metzger baseline: per-page-key encipherment of node blocks.

Every triplet -- search key included -- is enciphered under the page key
``K_Pi = PK(K_E, P_id)``, so node navigation is a *binary
search-and-decrypt*: each key probe is a triplet decryption, costing
about ``log2(n)`` decryptions per node of ``n`` triplets (§3), and every
split/merge re-enciphers every migrated triplet under the destination
page's key.

The facade mirrors :class:`~repro.core.enciphered_btree.EncipheredBTree`
so experiments can drive both through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BTree
from repro.core.codecs import PageKeyNodeCodec, WholePageNodeCodec
from repro.core.records import RecordStore
from repro.crypto.pagekey import PageKeyScheme
from repro.exceptions import BTreeError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import Pager


@dataclass(frozen=True)
class BaselineCost:
    """Cost snapshot in the baseline's own units."""

    triplet_encryptions: int
    triplet_decryptions: int
    des_block_encryptions: int
    des_block_decryptions: int
    comparisons: int
    nodes_visited: int
    disk_reads: int
    disk_writes: int

    def minus(self, earlier: "BaselineCost") -> "BaselineCost":
        return BaselineCost(
            triplet_encryptions=self.triplet_encryptions - earlier.triplet_encryptions,
            triplet_decryptions=self.triplet_decryptions - earlier.triplet_decryptions,
            des_block_encryptions=self.des_block_encryptions - earlier.des_block_encryptions,
            des_block_decryptions=self.des_block_decryptions - earlier.des_block_decryptions,
            comparisons=self.comparisons - earlier.comparisons,
            nodes_visited=self.nodes_visited - earlier.nodes_visited,
            disk_reads=self.disk_reads - earlier.disk_reads,
            disk_writes=self.disk_writes - earlier.disk_writes,
        )

    @property
    def decryptions(self) -> int:
        """Triplet decryptions -- comparable with the paper scheme's
        pointer decryptions (both are 'one cryptogram opened')."""
        return self.triplet_decryptions


class BayerMetzgerBTree:
    """B-Tree whose node blocks are enciphered with per-page keys.

    Two layouts, both described by Bayer & Metzger:

    * ``layout="triplet"`` (default) -- each triplet is its own cipher
      unit, enabling the lazy *binary search-and-decrypt* the paper
      analyses: decryptions scale with probes, not node size;
    * ``layout="page"`` -- the whole page is one ciphertext (the simplest
      reading of ``C = T(M, K_Pi)``): any access decrypts the entire
      node, so the per-visit cost is the node's full block count
      regardless of what is read.  ``page_mode`` selects the text cipher
      ``T`` (``"ecb"``, ``"cbc"`` or ``"progressive"``).
    """

    _LAYOUTS = ("triplet", "page")

    def __init__(
        self,
        file_key: bytes = b"\x01\x23\x45\x67\x89\xab\xcd\xef",
        *,
        block_size: int = 4096,
        min_degree: int | None = None,
        cache_blocks: int = 0,
        key_bytes: int = 8,
        data_key: bytes = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1",
        record_size: int = 120,
        layout: str = "triplet",
        page_mode: str = "ecb",
    ) -> None:
        if layout not in self._LAYOUTS:
            raise BTreeError(f"layout must be one of {self._LAYOUTS}, got {layout!r}")
        self.layout = layout
        if layout == "triplet":
            self.scheme = PageKeyScheme(file_key, mode="ecb")
            self.codec = PageKeyNodeCodec(self.scheme, key_bytes=key_bytes)
        else:
            self.scheme = PageKeyScheme(file_key, mode=page_mode)
            self.codec = WholePageNodeCodec(self.scheme, key_bytes=key_bytes)
        self.disk = SimulatedDisk(block_size=block_size)
        self.pager = Pager(self.disk, cache_blocks=cache_blocks)
        if min_degree is None:
            min_degree = self._fit_min_degree(block_size)
        self.tree = BTree(pager=self.pager, codec=self.codec, min_degree=min_degree)
        self.records = RecordStore(
            data_key, record_size=record_size, block_size=block_size
        )

    def _fit_min_degree(self, block_size: int) -> int:
        t = 2
        while self.codec.node_overhead_bytes(2 * (t + 1) - 1, is_leaf=False) <= block_size:
            t += 1
        if self.codec.node_overhead_bytes(2 * t - 1, is_leaf=False) > block_size:
            raise BTreeError(
                f"block size {block_size} cannot hold a degree-2 node"
            )
        return t

    # -- record operations -----------------------------------------------

    def insert(self, key: int, record: bytes) -> None:
        record_id = self.records.put(record)
        try:
            self.tree.insert(key, record_id)
        except Exception:
            self.records.delete(record_id)
            raise

    def search(self, key: int) -> bytes:
        return self.records.get(self.tree.search(key))

    def delete(self, key: int) -> None:
        record_id = self.tree.search(key)
        self.tree.delete(key)
        self.records.delete(record_id)

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        return [
            (key, self.records.get(record_id))
            for key, record_id in self.tree.range_search(lo, hi)
        ]

    def __len__(self) -> int:
        return self.tree.size

    # -- accounting ----------------------------------------------------------

    def cost_snapshot(self) -> BaselineCost:
        return BaselineCost(
            triplet_encryptions=self.codec.triplet_counts.encryptions,
            triplet_decryptions=self.codec.triplet_counts.decryptions,
            des_block_encryptions=self.codec.block_counts.encryptions,
            des_block_decryptions=self.codec.block_counts.decryptions,
            comparisons=self.tree.counters.comparisons,
            nodes_visited=self.tree.counters.nodes_visited,
            disk_reads=self.disk.stats.reads,
            disk_writes=self.disk.stats.writes,
        )

    def reset_costs(self) -> None:
        self.codec.triplet_counts.reset()
        self.codec.block_counts.reset()
        self.tree.counters.reset()
        self.disk.stats.reset()
        self.pager.stats.reset()
