"""The Hardjono--Seberry enciphered B-Tree (the paper's system).

Node blocks store ``[f(k_i)] [E(b || a_i || p_i)]`` triplets: search keys
disguised by a block-design substitution, pointer pairs encrypted (RSA in
private-parameter mode by default) and bound to their block number.
Records live in a separate :class:`~repro.core.records.RecordStore` under
an independent cipher, per §5.

Traversal cost profile (the paper's improvement):

* routing through a node inverts disguises -- arithmetic, not decryption;
* exactly **one** pointer cryptogram is decrypted per internal node (the
  chosen child), and one more at the leaf for the data pointer.

Every cost is metered: :meth:`cost_snapshot` captures substitutions,
pointer-cipher operations, comparisons, node visits and disk traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.btree.tree import BTree
from repro.core.codecs import SubstitutedNodeCodec
from repro.core.packing import PointerPacking
from repro.core.records import RecordStore
from repro.crypto.base import CountingCipher, IntegerCipher
from repro.crypto.rsa import RSA, generate_rsa_keypair
from repro.exceptions import BTreeError, SubstitutionError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import Pager
from repro.substitution.base import KeySubstitution
from repro.substitution.exponentiation import ExponentiationSubstitution


@dataclass(frozen=True)
class TraversalCost:
    """A snapshot of every cost dimension the paper reasons about."""

    substitutions: int
    inversions: int
    pointer_encryptions: int
    pointer_decryptions: int
    comparisons: int
    nodes_visited: int
    disk_reads: int
    disk_writes: int

    def minus(self, earlier: "TraversalCost") -> "TraversalCost":
        """Per-operation cost: difference of two snapshots."""
        return TraversalCost(
            substitutions=self.substitutions - earlier.substitutions,
            inversions=self.inversions - earlier.inversions,
            pointer_encryptions=self.pointer_encryptions - earlier.pointer_encryptions,
            pointer_decryptions=self.pointer_decryptions - earlier.pointer_decryptions,
            comparisons=self.comparisons - earlier.comparisons,
            nodes_visited=self.nodes_visited - earlier.nodes_visited,
            disk_reads=self.disk_reads - earlier.disk_reads,
            disk_writes=self.disk_writes - earlier.disk_writes,
        )

    @property
    def decryptions(self) -> int:
        """Total decryptions (the paper's headline unit)."""
        return self.pointer_decryptions


class EncipheredBTree:
    """Facade wiring disk, pager, codec, B-Tree and record store together.

    Parameters
    ----------
    substitution:
        The key disguise (oval, exponentiation, sum, identity, ...).
        Exponentiation disguises are refused unless injective.
    pointer_cipher:
        Integer cipher for pointer pairs; a deterministic 128-bit RSA key
        is generated when omitted.
    block_size / min_degree / cache_blocks:
        Node-block geometry.  ``min_degree`` defaults to the largest value
        that fits ``block_size`` under the codec's layout.
    write_back:
        ``False`` (default) keeps the pager write-through, which the
        paper's experiments require (every node rewrite is a disk
        write); ``True`` defers node writes to eviction or
        :meth:`flush`, coalescing hot-block rewrites.  Cipher counts are
        identical either way -- deferral happens below the codec.
    data_key:
        8-byte key for the independent data-block cipher.
    """

    def __init__(
        self,
        substitution: KeySubstitution,
        pointer_cipher: IntegerCipher | None = None,
        *,
        block_size: int = 4096,
        min_degree: int | None = None,
        cache_blocks: int = 0,
        write_back: bool = False,
        data_key: bytes = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1",
        record_size: int = 120,
        extra_pointer_mode: str = "encrypt",
        packing: PointerPacking | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if isinstance(substitution, ExponentiationSubstitution) and not substitution.is_injective():
            raise SubstitutionError(
                "exponentiation disguise is not injective for these parameters "
                "(two keys share a substitute); choose N > v or different t/g"
            )
        if pointer_cipher is None:
            keypair = generate_rsa_keypair(
                bits=128, rng=rng or random.Random(0x48533930)
            )
            pointer_cipher = RSA(keypair)
        self.pointer_cipher = CountingCipher(pointer_cipher)
        self.substitution = substitution
        self.codec = SubstitutedNodeCodec(
            substitution,
            self.pointer_cipher,
            packing or PointerPacking(),
            extra_pointer_mode=extra_pointer_mode,
        )
        self.disk = SimulatedDisk(block_size=block_size)
        self.pager = Pager(self.disk, cache_blocks=cache_blocks, write_back=write_back)
        if min_degree is None:
            min_degree = self._fit_min_degree(block_size)
        self.tree = BTree(pager=self.pager, codec=self.codec, min_degree=min_degree)
        self.records = RecordStore(
            data_key, record_size=record_size, block_size=block_size
        )

    def _fit_min_degree(self, block_size: int) -> int:
        """Largest minimum degree whose full node fits one block."""
        t = 2
        while self.codec.node_overhead_bytes(2 * (t + 1) - 1, is_leaf=False) <= block_size:
            t += 1
        if self.codec.node_overhead_bytes(2 * t - 1, is_leaf=False) > block_size:
            raise BTreeError(
                f"block size {block_size} cannot hold even a degree-2 node "
                f"under this codec"
            )
        return t

    # -- record operations -----------------------------------------------

    def insert(self, key: int, record: bytes) -> None:
        """Store ``record`` and index it under ``key``."""
        record_id = self.records.put(record)
        try:
            self.tree.insert(key, record_id)
        except Exception:
            self.records.delete(record_id)
            raise

    def search(self, key: int) -> bytes:
        """Fetch the record stored under ``key`` (deciphered)."""
        return self.records.get(self.tree.search(key))

    def delete(self, key: int) -> None:
        """Remove the key and free its record slot."""
        record_id = self.tree.search(key)
        self.tree.delete(key)
        self.records.delete(record_id)

    def bulk_load(self, items) -> None:
        """Ingest ``(key, record)`` pairs via the bottom-up tree build.

        Each node block is enciphered and written exactly once; requires
        an empty tree.  On failure the stored records are freed again.
        """
        pairs = []
        try:
            for key, record in items:
                pairs.append((key, self.records.put(record)))
            self.tree.bulk_load(pairs)
        except Exception:
            for _, record_id in pairs:
                self.records.delete(record_id)
            raise

    def flush(self) -> int:
        """Push dirty node pages to disk (no-op under write-through)."""
        return self.pager.flush()

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        """All ``(key, record)`` pairs with ``lo <= key <= hi``.

        Works for *every* disguise because triplet placement follows the
        plaintext keys (§4.1: substitution happens after the shape of the
        B-Tree has been determined).
        """
        return [
            (key, self.records.get(record_id))
            for key, record_id in self.tree.range_search(lo, hi)
        ]

    def __len__(self) -> int:
        return self.tree.size

    # -- accounting ----------------------------------------------------------

    def cost_snapshot(self) -> TraversalCost:
        """Current cumulative cost counters."""
        return TraversalCost(
            substitutions=self.substitution.counters.substitutions,
            inversions=self.substitution.counters.inversions,
            pointer_encryptions=self.pointer_cipher.counts.encryptions,
            pointer_decryptions=self.pointer_cipher.counts.decryptions,
            comparisons=self.tree.counters.comparisons,
            nodes_visited=self.tree.counters.nodes_visited,
            disk_reads=self.disk.stats.reads,
            disk_writes=self.disk.stats.writes,
        )

    def reset_costs(self) -> None:
        """Zero every counter (between benchmark phases)."""
        self.substitution.reset_counters()
        self.pointer_cipher.reset_counts()
        self.tree.counters.reset()
        self.disk.stats.reset()
        self.pager.stats.reset()
