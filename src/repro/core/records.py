"""Encrypted data blocks: where the actual records live.

§5: *"The encryption algorithm used for the encryption of data blocks can
be different and independent to that used for the tree and data pointers
in the node blocks."*  The record store therefore owns its own simulated
disk with its own cipher at the I/O boundary, entirely independent of the
node-block machinery.  Compromise of the node blocks yields only the
*locations* of data blocks, never their contents.

Records are stored in fixed-size slots (several per block); the *data
pointer* ``a`` stored in node triplets is the slot's global index.

Plaintext block cache
---------------------

Benchmark C8 measured per-match record-block DES decryption at ~70-80%
of range-query time: every :meth:`RecordStore.get` deciphered a whole
block to extract one slot, so a range query touching ``m`` records in
the same block paid ``m`` full-block decryptions.  ``cache_blocks > 0``
puts an :class:`~repro.storage.cache.LRUCache` of *deciphered slot
tuples* above the disk, so each block is deciphered once per residency
instead of once per matching record (benchmark C9).

The cache is write-through on the plaintext side: every slot write
re-enciphers and writes the block as before (ciphertext traffic is
byte-identical with the cache on or off) and refreshes the cached
tuple, so reads after ``put``/``delete`` -- including the deletes a
transaction rollback issues -- can never see stale plaintext.  The
default is ``0`` (off): the store behaves bit-for-bit as it always has,
which is the control arm of C9's security-envelope check.
"""

from __future__ import annotations

from repro.crypto.base import CryptoOpCounts
from repro.crypto.des import DES
from repro.crypto.modes import CBCCipher
from repro.exceptions import BlockBoundsError, StorageError
from repro.obs.tracing import NULL_TRACER
from repro.storage.backend import StorageBackend
from repro.storage.cache import LRUCache
from repro.storage.disk import SimulatedDisk
from repro.storage.journal import ChangeJournal, DiskDelta, RecordStoreDelta


class _RecordBlockTransform:
    """DES-CBC at the data-block boundary, IV derived from the block id.

    ``counts`` meters whole-block cipher operations (one per block
    enciphered or deciphered); it is thread-safe because concurrent
    readers decipher outside every lock.
    """

    def __init__(self, key: bytes) -> None:
        self.key = key
        self._des = DES(key)
        self.counts = CryptoOpCounts()
        #: Span tracer timing whole-block cipher work; defaults to the
        #: shared disabled tracer (see :meth:`RecordStore.attach_tracer`).
        self.tracer = NULL_TRACER

    def _cipher(self, block_id: int) -> CBCCipher:
        iv = self._des.encrypt_block((block_id ^ 0xA5A5A5A5).to_bytes(8, "big"))
        return CBCCipher(self._des, iv)

    def on_write(self, block_id: int, data: bytes) -> bytes:
        with self.tracer.trace("cipher.record_encrypt"):
            self.counts.bump("encryptions")
            return self._cipher(block_id).encrypt(data)

    def on_read(self, block_id: int, data: bytes) -> bytes:
        with self.tracer.trace("cipher.record_decrypt"):
            self.counts.bump("decryptions")
            return self._cipher(block_id).decrypt(data)


class RecordStore:
    """Slotted, enciphered record storage.

    Parameters
    ----------
    data_key:
        8-byte key for the data-block cipher (independent of node keys).
    record_size:
        Slot payload capacity; records longer than this are rejected.
    block_size:
        Data-block size; determines slots per block.
    cache_blocks:
        Capacity (in blocks) of the plaintext slot cache; ``0`` (the
        default) disables it, preserving the decipher-per-read cost
        model exactly.
    backend:
        Optional :class:`~repro.storage.backend.StorageBackend` the
        store's device comes from (``None`` keeps the historical
        private in-memory disk).  ``device_name``/``create`` select and
        qualify the backend device; opening an *existing* device gives
        back the at-rest bytes but not the slot metadata, which lives
        only in memory -- use :meth:`reopen` (or call
        :meth:`recover_metadata`) to rebuild it by scanning.
    """

    def __init__(
        self,
        data_key: bytes,
        record_size: int = 120,
        block_size: int = 4096,
        cache_blocks: int = 0,
        *,
        backend: StorageBackend | None = None,
        device_name: str = "records",
        create: bool | None = None,
    ) -> None:
        slot = record_size + 2  # 2-byte length prefix
        # CBC pads up to a full cipher block; leave room for it.
        usable = block_size - 8
        self.slots_per_block = usable // slot
        if self.slots_per_block < 1:
            raise StorageError(
                f"record size {record_size} too large for {block_size}-byte blocks"
            )
        self.record_size = record_size
        self.slot_size = slot
        self._transform = _RecordBlockTransform(data_key)
        if backend is not None:
            self.disk = backend.open_device(
                device_name,
                block_size=block_size,
                transform=self._transform,
                create=create,
            )
        else:
            self.disk = SimulatedDisk(block_size=block_size, transform=self._transform)
        #: Mutated record-slot ids since the last seal (``put``/``delete``
        #: note here); the block-level journal on :attr:`disk` tracks the
        #: enciphered bytes the sync protocol actually ships, this one
        #: gives deltas their slot-precise manifest.
        self.journal = ChangeJournal()
        self.cache = LRUCache(cache_blocks, name="record-plaintext")
        self._open_block: int | None = None
        self._open_slots: list[bytes] = []
        self._free: list[int] = []
        self.count = 0
        #: Number of platter blocks the slot metadata above reflects;
        #: :meth:`reattach` uses it to tell "block changed under me"
        #: from "block is new to me".
        self._meta_blocks = self.disk.num_blocks

    @classmethod
    def reopen(
        cls,
        data_key: bytes,
        backend: StorageBackend,
        *,
        record_size: int = 120,
        block_size: int = 4096,
        cache_blocks: int = 0,
        device_name: str = "records",
    ) -> "RecordStore":
        """Rebuild a store from a backend's existing device by scanning.

        The platter holds only enciphered slot blocks -- no metadata
        records -- so the free list, record count and open block are
        recovered by deciphering every block once and reading the slot
        length prefixes (a free slot's prefix is the ``0xFFFF`` marker).
        That full-scan decipher *is* the honest cold-open cost of the
        metadata-less format; benchmark C12 measures it.
        """
        store = cls(
            data_key,
            record_size=record_size,
            block_size=block_size,
            cache_blocks=cache_blocks,
            backend=backend,
            device_name=device_name,
            create=False,
        )
        store.recover_metadata()
        return store

    @property
    def cipher_counts(self) -> CryptoOpCounts:
        """Whole-block record-cipher operation counters."""
        return self._transform.counts

    def attach_tracer(self, tracer) -> None:
        """Route cipher and device spans into the owning database's tracer."""
        self._transform.tracer = tracer
        self.disk.tracer = tracer

    @property
    def data_key(self) -> bytes:
        """The data-block cipher key (secret; in-memory material only)."""
        return self._transform.key

    # -- whole-store state (process-executor support) --------------------

    def export_state(self) -> dict[str, object]:
        """Everything a process-pool worker needs to rebuild this store.

        Platter bytes stay *enciphered* (they are exported at rest,
        below the transform) alongside the slot-allocation metadata that
        lives only in memory.  Pair with :meth:`from_state`.
        """
        return {
            "data_key": self.data_key,
            "record_size": self.record_size,
            "block_size": self.disk.block_size,
            "cache_blocks": self.cache.capacity,
            "blocks": self.disk.export_state(),
            "free": list(self._free),
            "count": self.count,
            "open_block": self._open_block,
            "open_slots": list(self._open_slots),
        }

    @classmethod
    def from_state(cls, state: dict[str, object]) -> "RecordStore":
        """Rebuild a store from :meth:`export_state` output (cold caches)."""
        store = cls(
            state["data_key"],
            record_size=state["record_size"],
            block_size=state["block_size"],
            cache_blocks=state["cache_blocks"],
        )
        store.import_state(state)
        return store

    def import_state(self, state: dict[str, object]) -> None:
        """Adopt another store's platter and slot metadata in place.

        Used when a worker's post-``bulk_load`` state is shipped back:
        the receiving store must already share the exported store's
        geometry and data key.  The plaintext cache is dropped -- it may
        describe blocks the imported platter replaced.
        """
        if (
            state["record_size"] != self.record_size
            or state["block_size"] != self.disk.block_size
            or state["data_key"] != self.data_key
        ):
            raise StorageError(
                "record-store state import requires identical geometry and key"
            )
        self.disk.import_state(state["blocks"])  # taints the block journal
        self._free = list(state["free"])
        self.count = state["count"]
        self._open_block = state["open_block"]
        self._open_slots = list(state["open_slots"])
        self._meta_blocks = self.disk.num_blocks
        self.journal.taint()  # slot history described the replaced store
        self.cache.clear()

    # -- metadata recovery (durable-backend support) ---------------------

    def _scan_block(self, block_id: int):
        """Decipher one block and classify its slots.

        Returns ``(slots, free_ids, live_count)``, or ``None`` for an
        allocated-but-never-written block (an empty open block a crash
        left behind).
        """
        try:
            data = self.disk.read_block(block_id)
        except BlockBoundsError:
            return None
        slots = [
            data[i : i + self.slot_size] for i in range(0, len(data), self.slot_size)
        ]
        free_ids: list[int] = []
        live = 0
        for slot, raw in enumerate(slots):
            if int.from_bytes(raw[:2], "big") > self.record_size:
                free_ids.append(block_id * self.slots_per_block + slot)
            else:
                live += 1
        return slots, free_ids, live

    def recover_metadata(self) -> None:
        """Rebuild free list / count / open block by scanning every block.

        The wholesale path: one decipher per allocated block.  The only
        partially-filled block a correct writer can leave is the open
        one, so the (last) block with fewer than ``slots_per_block``
        slots -- or a never-written trailing allocation -- is adopted as
        the open block.
        """
        free: list[int] = []
        count = 0
        open_block: int | None = None
        open_slots: list[bytes] = []
        for block_id in range(self.disk.num_blocks):
            scanned = self._scan_block(block_id)
            if scanned is None:
                open_block, open_slots = block_id, []
                continue
            slots, free_ids, live = scanned
            free.extend(free_ids)
            count += live
            if len(slots) < self.slots_per_block:
                open_block, open_slots = block_id, slots
        self._free = free
        self.count = count
        self._open_block = open_block
        self._open_slots = open_slots
        self._meta_blocks = self.disk.num_blocks
        self.cache.clear()

    def reattach(self) -> set[int] | None:
        """Catch up with commits another handle made to the same device.

        Polls the device for the block ids whose at-rest bytes moved,
        invalidates exactly those plaintext cache entries, and repairs
        the slot metadata incrementally -- deciphering only the changed
        blocks, not the whole store.  Falls back to a full
        :meth:`recover_metadata` (and a cache clear) when the device
        cannot prove completeness (``poll()`` returned ``None``).
        Returns what ``poll`` returned.
        """
        changed = self.disk.poll()
        if changed is None:
            self.recover_metadata()
            return None
        if changed:
            for block_id in changed:
                self.cache.invalidate(block_id)
            self._reindex_blocks(changed)
        return changed

    def _reindex_blocks(self, changed) -> None:
        """Fold a set of changed blocks into the slot metadata.

        For each block the previous contribution (slots known, free
        among them) is subtracted -- derivable from the old free list
        and open-block record -- and the freshly scanned contribution is
        added, so ``count``/``free`` stay exact without touching
        unchanged blocks.
        """
        spb = self.slots_per_block
        free_set = set(self._free)
        for block_id in sorted(changed):
            if block_id < self._meta_blocks:
                old_slots = (
                    len(self._open_slots) if block_id == self._open_block else spb
                )
                old_free = sum(
                    1 for s in range(old_slots) if block_id * spb + s in free_set
                )
                old_live = old_slots - old_free
            else:
                old_live = 0
            free_set.difference_update(block_id * spb + s for s in range(spb))
            scanned = self._scan_block(block_id)
            if scanned is None:
                if block_id >= self._meta_blocks:
                    self._open_block, self._open_slots = block_id, []
                new_live = 0
            else:
                slots, free_ids, new_live = scanned
                free_set.update(free_ids)
                if len(slots) < spb:
                    self._open_block, self._open_slots = block_id, slots
                elif block_id == self._open_block:
                    self._open_slots = slots  # the open block filled up
            self.count += new_live - old_live
        self._free = sorted(free_set)
        self._meta_blocks = max(self._meta_blocks, self.disk.num_blocks)

    # -- incremental replica sync ----------------------------------------

    def seal_changes(self, epoch: int) -> None:
        """Close both journals' open change sets under ``epoch``."""
        self.journal.seal(epoch)
        self.disk.journal.seal(epoch)

    def truncate_journals(self, epoch: int) -> None:
        """The (single) replica consumer got a full snapshot at ``epoch``."""
        self.journal.truncate(epoch)
        self.disk.journal.truncate(epoch)

    @property
    def has_unsealed_changes(self) -> bool:
        return self.journal.has_open or self.disk.journal.has_open

    def collect_delta(self, since_epoch: int) -> RecordStoreDelta | None:
        """Changed enciphered blocks + full slot metadata since an epoch.

        ``None`` when either journal cannot prove completeness back to
        ``since_epoch`` (the consumer needs a full snapshot).  Bytes are
        read at rest -- below the record cipher -- at collect time, so a
        slot rewritten many times ships its final block image once.
        """
        changed_blocks = self.disk.journal.collect_since(since_epoch)
        changed_slots = self.journal.collect_since(since_epoch)
        if changed_blocks is None or changed_slots is None:
            return None
        return RecordStoreDelta(
            disk=DiskDelta(
                num_blocks=self.disk.num_blocks,
                block_writes=self.disk.snapshot_blocks(sorted(changed_blocks)),
            ),
            slot_writes=sorted(changed_slots),
            free=list(self._free),
            count=self.count,
            open_block=self._open_block,
            open_slots=list(self._open_slots),
        )

    def apply_delta(self, delta: RecordStoreDelta) -> None:
        """Adopt a delta in place (the replica-side half of collect).

        Patches the enciphered platter, replaces the slot metadata
        wholesale (it is small and ships complete), and invalidates the
        plaintext cache for exactly the patched blocks -- cached
        plaintext must never outlive the bytes it was deciphered from.
        """
        self.disk.patch_state(delta.disk.num_blocks, delta.disk.block_writes)
        self._free = list(delta.free)
        self.count = delta.count
        self._open_block = delta.open_block
        self._open_slots = list(delta.open_slots)
        self._meta_blocks = self.disk.num_blocks
        for block_id in delta.disk.block_writes:
            self.cache.invalidate(block_id)

    # -- helpers ---------------------------------------------------------

    def _store_block(self, block_index: int, slots: list[bytes]) -> None:
        """Encipher and write a block, keeping the plaintext cache current."""
        self.disk.write_block(block_index, b"".join(slots))
        if self.cache.enabled:
            self.cache.put(block_index, tuple(slots))

    def _flush_open(self) -> None:
        assert self._open_block is not None
        self._store_block(self._open_block, self._open_slots)

    def _locate(self, record_id: int) -> tuple[int, int]:
        block_index, slot = divmod(record_id, self.slots_per_block)
        if block_index >= self.disk.num_blocks:
            raise StorageError(f"record id {record_id} beyond store")
        return block_index, slot

    def _encode_slot(self, record: bytes) -> bytes:
        if len(record) > self.record_size:
            raise StorageError(
                f"record of {len(record)} bytes exceeds slot of {self.record_size}"
            )
        return len(record).to_bytes(2, "big") + record.ljust(self.record_size, b"\x00")

    def _load_slots(self, block_index: int) -> tuple[bytes, ...]:
        """The block's slots in plaintext, deciphering at most once.

        Cache misses read (and decipher) the platter and fill the cache;
        racing readers may both decipher, either fill wins (the values
        are identical).
        """
        if self.cache.enabled:
            cached = self.cache.get(block_index)
            if cached is not None:
                return cached
        data = self.disk.read_block(block_index)
        slots = tuple(
            data[i : i + self.slot_size]
            for i in range(0, len(data), self.slot_size)
        )
        if self.cache.enabled:
            self.cache.put(block_index, slots)
        return slots

    def _read_slots(self, block_index: int) -> list[bytes]:
        return list(self._load_slots(block_index))

    def clear_cache(self) -> int:
        """Drop every cached plaintext block (cold-start support)."""
        return self.cache.clear()

    def warm_blocks(self, block_ids) -> int:
        """Pre-decipher the listed blocks into the plaintext cache.

        The record-side analogue of tree warming: fed from a persisted
        heat map (see :meth:`repro.core.database.EncipheredDatabase.
        warm`), it pays each block's decipher up front so the first real
        reads hit plaintext.  Returns the number of blocks actually
        warmed; ids beyond the store, never-written blocks, and ids the
        (disabled or too-small) cache will not retain are skipped, not
        errors -- a heat map from a previous session may describe blocks
        that no longer exist.
        """
        if not self.cache.enabled:
            return 0
        in_range = [
            block_id
            for block_id in block_ids
            if 0 <= block_id < self.disk.num_blocks
        ]
        missing = [
            block_id for block_id in in_range if self.cache.peek(block_id) is None
        ]
        # blocks already plaintext-resident count as warmed, as before
        warmed = len(in_range) - len(missing)
        if missing:
            # one batched device round trip for the whole miss set (the
            # fixed service cost -- a SimulatedDisk latency sleep, a
            # platter seek pass -- is paid once); decipher counts are
            # identical to warming block by block
            try:
                for block_id, data in zip(missing, self.disk.read_many(missing)):
                    slots = tuple(
                        data[i : i + self.slot_size]
                        for i in range(0, len(data), self.slot_size)
                    )
                    self.cache.put(block_id, slots)
                    warmed += 1
                return warmed
            except (BlockBoundsError, StorageError):
                pass  # a never-written id poisons the batch; retry singly
        for block_id in missing:
            try:
                self._load_slots(block_id)
            except (BlockBoundsError, StorageError):
                continue
            warmed += 1
        return warmed

    # -- public API ------------------------------------------------------

    def put(self, record: bytes) -> int:
        """Store a record, returning its data pointer (slot index)."""
        if self._free:
            record_id = self._free.pop()
            block_index, slot = self._locate(record_id)
            slots = self._read_slots(block_index)
            slots[slot] = self._encode_slot(record)
            self._store_block(block_index, slots)
            if block_index == self._open_block:
                self._open_slots[slot] = slots[slot]
            self.count += 1
            self.journal.note(record_id)
            return record_id
        if self._open_block is None or len(self._open_slots) == self.slots_per_block:
            self._open_block = self.disk.allocate()
            self._open_slots = []
            self._meta_blocks = max(self._meta_blocks, self._open_block + 1)
        self._open_slots.append(self._encode_slot(record))
        self._flush_open()
        self.count += 1
        record_id = self._open_block * self.slots_per_block + len(self._open_slots) - 1
        self.journal.note(record_id)
        return record_id

    def get(self, record_id: int) -> bytes:
        """Fetch and decipher the record at ``record_id``."""
        block_index, slot = self._locate(record_id)
        slots = self._load_slots(block_index)
        if slot >= len(slots):
            raise StorageError(f"record id {record_id} names an empty slot")
        raw = slots[slot]
        length = int.from_bytes(raw[:2], "big")
        if length > self.record_size:
            raise StorageError(f"record id {record_id} slot is free or corrupt")
        return raw[2 : 2 + length]

    def delete(self, record_id: int) -> None:
        """Free a slot (its bytes are overwritten with an empty marker).

        The cached plaintext block is refreshed in the same step, so a
        deleted record's bytes are evicted from memory along with the
        platter: a later ``get`` fails on the free marker, never on
        stale cache contents.
        """
        block_index, slot = self._locate(record_id)
        slots = self._read_slots(block_index)
        if slot >= len(slots):
            raise StorageError(f"record id {record_id} names an empty slot")
        slots[slot] = b"\xff\xff" + b"\x00" * self.record_size
        self._store_block(block_index, slots)
        if block_index == self._open_block:
            self._open_slots[slot] = slots[slot]
        self._free.append(record_id)
        self.count -= 1
        self.journal.note(record_id)
