"""Block allocation and a two-level block cache with two write policies.

The pager sits between the B-Tree and the block device (the in-memory
:class:`~repro.storage.disk.SimulatedDisk` or the durable
:class:`~repro.storage.platter.FilePlatter` -- any
:class:`~repro.storage.device.BlockDevice`).  Both of its
cache levels are :class:`~repro.storage.cache.LRUCache` instances -- the
one caching subsystem every layer of the read path shares:

* The **raw cache** holds blocks in their *post-transform* (i.e. still
  plain, the disk transform is below us) byte form as returned by the
  disk read path; decoding a node -- which is where the per-triplet
  cryptography lives -- always happens above the pager, so raw hits save
  disk I/O but never hide cryptographic cost.  That separation keeps the
  decryption counts of experiments C1/C3 faithful to the paper's model,
  where every node *visit* pays its decryptions.
* The **decoded cache** (``decoded_cache_blocks``, *disabled by
  default*) additionally memoises the caller-supplied decode of a block
  via :meth:`Pager.read_decoded`.  A decoded hit skips the codec
  entirely -- including its cryptography -- so this level must stay off
  for every paper-faithful experiment; it exists for the serving path,
  where redundant re-decryption of hot nodes is pure waste (benchmark
  C9).  Every write or invalidation of a block drops its decoded entry,
  so the decoded cache can never serve bytes the raw path has replaced.

Two write policies are offered:

* **write-through** (the default): every :meth:`Pager.write` goes straight
  to the disk.  This is the mode the paper's experiments (C1/C3 and the
  E-series) must run in -- each node rewrite is a disk write, so the
  reported I/O counts match the paper's per-operation cost model exactly.
* **write-back** (``write_back=True``): writes only mark the cached copy
  dirty; bytes reach the disk when the block is evicted (evict-writes-
  dirty, via the raw cache's eviction callback), on :meth:`Pager.flush`,
  or never if :meth:`Pager.discard_dirty` drops them first.  Repeated
  rewrites of a hot block -- the superblock, a leaf absorbing a batch of
  inserts -- coalesce into one disk write, which is the amortisation a
  transactional commit layer builds on.  Deferral happens *below* the
  node codec, so cryptographic counts are identical in both modes; only
  disk-write counts change.

:class:`PagerStats` tracks both the read-side cache effectiveness and the
write-side amplification (logical write requests vs. blocks that actually
hit the platter), which benchmark C7 reports.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable

from repro.obs.tracing import NULL_TRACER
from repro.storage.cache import LRUCache
from repro.storage.device import BlockDevice
from repro.storage.journal import DiskDelta


@dataclass
class PagerStats:
    """Cache-effectiveness and write-traffic counters.

    ``write_requests`` counts logical writes asked of the pager;
    ``disk_writes`` counts blocks the pager actually pushed to disk.  In
    write-through mode the two are equal; in write-back mode coalescing
    makes ``disk_writes`` the smaller number.
    """

    hits: int = 0
    misses: int = 0
    write_requests: int = 0
    disk_writes: int = 0
    dirty_evictions: int = 0
    flushes: int = 0
    #: Readahead accounting: blocks handed to the background fetchers,
    #: fetches that filled the raw cache, and fetches discarded on
    #: arrival (already cached by a racing read, or poisoned by a write
    #: or invalidation that landed while the fetch was in flight).
    readaheads: int = 0
    readahead_loads: int = 0
    readahead_drops: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.write_requests = 0
        self.disk_writes = 0
        self.dirty_evictions = 0
        self.flushes = 0
        self.readaheads = 0
        self.readahead_loads = 0
        self.readahead_drops = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def writes_deferred(self) -> int:
        """Logical writes that never became their own disk write."""
        return self.write_requests - self.disk_writes

    @property
    def write_amplification(self) -> float:
        """Disk writes per logical write (1.0 in write-through mode)."""
        return self.disk_writes / self.write_requests if self.write_requests else 0.0


class Pager:
    """Two-level LRU block cache with write-through or write-back semantics.

    Parameters
    ----------
    disk:
        The underlying block device.
    cache_blocks:
        Raw-cache capacity in blocks; ``0`` disables raw caching, which
        the benchmarks use to measure cold-traversal costs.  (With
        ``write_back=True`` and no cache, every dirty page is evicted --
        and therefore written -- immediately, degenerating to
        write-through.)
    write_back:
        ``False`` (default) writes through to disk on every
        :meth:`write`; ``True`` defers writes to eviction or
        :meth:`flush`.
    decoded_cache_blocks:
        Capacity of the decoded-page cache consulted by
        :meth:`read_decoded`; ``0`` (default) disables it, keeping every
        decode -- and its cryptography -- on the paper's cost model.
    decoded_cache_bytes:
        Optional byte budget for the decoded-page cache, metered by each
        view's encoded block length.  May be combined with the entry
        bound (both apply) or used alone (``decoded_cache_blocks=0``
        with a byte budget caps memory, not entries).

    Attributes
    ----------
    retain_dirty:
        When ``True``, eviction never selects a dirty page -- including
        pages that were already dirty when the flag was raised -- so the
        raw cache may temporarily exceed ``cache_blocks``.  A transaction
        sets this so that uncommitted pages stay discardable for
        rollback; the bound is restored by the :meth:`flush` or
        :meth:`discard_dirty` that ends the transaction.
    """

    def __init__(
        self,
        disk: BlockDevice,
        cache_blocks: int = 64,
        write_back: bool = False,
        decoded_cache_blocks: int = 0,
        decoded_cache_bytes: int = 0,
        readahead_workers: int = 0,
    ) -> None:
        self.disk = disk
        self.write_back = write_back
        self.retain_dirty = False
        self.stats = PagerStats()
        #: Background-fetch pool size; ``0`` (default) disables
        #: :meth:`readahead` entirely, keeping disk-read counts exactly
        #: on the blocking cost model.
        self.readahead_workers = readahead_workers
        self._ra_queue: "queue.Queue[list[int] | None]" = queue.Queue()
        self._ra_threads: list[threading.Thread] = []
        self._ra_inflight: set[int] = set()
        self._ra_poisoned: set[int] = set()
        #: Span tracer for read/write/flush timing; defaults to the
        #: shared disabled tracer, replaced by the owning database.
        self.tracer = NULL_TRACER
        self._raw = LRUCache(
            cache_blocks,
            on_evict=self._write_if_dirty,
            # consulted at eviction time, so it protects pages that were
            # dirty before retain_dirty was raised, not just later writes
            may_evict=lambda b: not (self.retain_dirty and b in self._dirty),
            name="pager-raw",
        )
        self.decoded = LRUCache(
            decoded_cache_blocks,
            name="pager-decoded",
            max_bytes=decoded_cache_bytes,
        )
        self._dirty: set[int] = set()
        # Concurrent readers admitted by the database's reader--writer
        # lock still *mutate* the pager (LRU reorder, fill-on-miss,
        # counters); this mutex keeps that mutation atomic.  Reentrant
        # because flush()/clear_cache() nest.
        self._lock = threading.RLock()

    def allocate(self) -> int:
        """Reserve a fresh block id."""
        return self.disk.allocate()

    @property
    def capacity(self) -> int:
        """Raw-cache capacity in blocks."""
        return self._raw.capacity

    @capacity.setter
    def capacity(self, cache_blocks: int) -> None:
        with self._lock:
            self._raw.resize(cache_blocks)

    @property
    def dirty_blocks(self) -> int:
        """Number of cached pages holding unwritten data."""
        with self._lock:
            return len(self._dirty)

    def read(self, block_id: int) -> bytes:
        """Read block bytes, consulting the raw cache first.

        In write-back mode the cache is authoritative: a dirty page is
        newer than the platter, so the cached copy is always returned.

        The mutex is *not* held across the disk read: the disk-level
        transform is where the cryptography happens, and concurrent
        readers missing on different blocks must be able to decipher in
        parallel.  Racing misses on the same block both read the platter;
        only the first fills the cache.
        """
        with self.tracer.trace("pager.read"):
            with self._lock:
                cached = self._raw.get(block_id)
                if cached is not None:
                    self.stats.hits += 1
                    return cached
                self.stats.misses += 1
            data = self.disk.read_block(block_id)
            with self._lock:
                current = self._raw.peek(block_id)
                if current is not None:
                    # a racing write (possibly dirty, newer than the
                    # platter) or fill beat us; theirs is authoritative
                    return current
                if self._raw.enabled:
                    self._raw.put(block_id, data)
            return data

    def readahead(self, block_ids) -> int:
        """Hint that the listed blocks will be read soon (advisory).

        With a worker pool configured (``readahead_workers > 0``) and
        the raw cache enabled, the not-yet-cached, not-dirty, not
        already-in-flight blocks are handed to a background fetcher that
        pulls them through :meth:`BlockDevice.read_many` -- one batched
        device round trip, deciphering off the caller's thread -- and
        fills the raw cache on arrival.  Returns the number of blocks
        scheduled (0 when the feature is off: the hint is free to emit
        unconditionally).

        Correctness under concurrent mutation: a write, invalidation or
        cache clear that lands while a fetch is in flight *poisons* the
        fetched block, and the arrival is dropped instead of filling the
        cache with bytes older than the platter's.  Fills also never
        overwrite an existing cache entry (a racing foreground read or
        write is authoritative), mirroring :meth:`read`.
        """
        if self.readahead_workers <= 0 or not self._raw.enabled:
            return 0
        with self._lock:
            batch = [
                block_id
                for block_id in block_ids
                if block_id not in self._ra_inflight
                and block_id not in self._dirty
                and self._raw.peek(block_id) is None
            ]
            if not batch:
                return 0
            self._ra_inflight.update(batch)
            self.stats.readaheads += len(batch)
            if not self._ra_threads:
                for i in range(self.readahead_workers):
                    thread = threading.Thread(
                        target=self._readahead_worker,
                        name=f"pager-readahead-{i}",
                        daemon=True,
                    )
                    thread.start()
                    self._ra_threads.append(thread)
        self._ra_queue.put(batch)
        return len(batch)

    def _readahead_worker(self) -> None:
        while True:
            batch = self._ra_queue.get()
            if batch is None:
                return
            with self.tracer.trace("pager.readahead"):
                try:
                    fetched = list(zip(batch, self.disk.read_many(batch)))
                except Exception:
                    # the batch is advisory: fall back per block and
                    # skip whatever cannot be read (never-written ids,
                    # bounds races, a device closing under us)
                    fetched = []
                    for block_id in batch:
                        try:
                            fetched.append((block_id, self.disk.read_block(block_id)))
                        except Exception:
                            fetched.append((block_id, None))
                with self._lock:
                    for block_id, data in fetched:
                        self._ra_inflight.discard(block_id)
                        if block_id in self._ra_poisoned:
                            self._ra_poisoned.discard(block_id)
                            self.stats.readahead_drops += 1
                        elif (
                            data is None
                            or not self._raw.enabled
                            or self._raw.peek(block_id) is not None
                        ):
                            self.stats.readahead_drops += 1
                        else:
                            self._raw.put(block_id, data)
                            self.stats.readahead_loads += 1

    def _poison_inflight(self, block_id: int) -> None:
        """Caller holds ``_lock``: mark an in-flight readahead stale."""
        if block_id in self._ra_inflight:
            self._ra_poisoned.add(block_id)

    def _poison_all_inflight(self) -> None:
        """Caller holds ``_lock``: no in-flight fetch may fill (cache
        reset paths -- the fill would defeat an intentional cold start,
        or resurrect bytes another handle has since replaced)."""
        self._ra_poisoned.update(self._ra_inflight)

    def close(self) -> None:
        """Stop the readahead workers (idempotent; drains in-flight work)."""
        with self._lock:
            threads, self._ra_threads = self._ra_threads, []
            self._poison_all_inflight()
        for _ in threads:
            self._ra_queue.put(None)
        for thread in threads:
            thread.join(timeout=10.0)

    def read_decoded(self, block_id: int, decode: Callable[[int, bytes], object]):
        """Read a block through the decoded-page cache.

        ``decode`` is called as ``decode(block_id, raw_bytes)`` on a
        decoded miss (or whenever the cache is disabled) and its result
        -- typically a lazy node view holding plaintext -- is memoised
        until the block is rewritten or invalidated.  The decode runs
        outside every pager lock, exactly like the raw read path: racing
        readers may decode the same block twice, and either result (they
        are equivalent) wins the fill.
        """
        if not self.decoded.enabled:
            return decode(block_id, self.read(block_id))
        cached = self.decoded.get(block_id)
        if cached is not None:
            return cached
        data = self.read(block_id)
        value = decode(block_id, data)
        # Weigh the view by its encoded block length: a lazy view retains
        # (at least) the block bytes it decodes from, so the stored size
        # is the honest lower bound a byte budget can meter.
        self.decoded.put(block_id, value, weight=len(data))
        return value

    def write(self, block_id: int, data: bytes) -> None:
        """Write a block: through to disk, or into the dirty set.

        Either way the block's decoded entry is dropped -- the plaintext
        cache must never outlive the bytes it was decoded from.
        """
        with self.tracer.trace("pager.write"):
            with self._lock:
                self.stats.write_requests += 1
                self._poison_inflight(block_id)
                self.decoded.invalidate(block_id)
                if self.write_back:
                    self._dirty.add(block_id)
                    # put() evicts over capacity, and eviction of a dirty
                    # page writes it (evict-writes-dirty) -- so with no
                    # cache at all this degenerates to write-through.
                    self._raw.put(block_id, data)
                else:
                    self.stats.disk_writes += 1
                    self.disk.write_block(block_id, data)
                    if self._raw.enabled:
                        self._raw.put(block_id, data)

    def flush(self) -> int:
        """Write every dirty page to disk; returns the number written.

        A no-op (and uncounted) when nothing is dirty, so write-through
        callers can flush unconditionally at commit points.
        """
        with self._lock:
            if not self._dirty:
                return 0
            with self.tracer.trace("pager.flush"):
                for block_id in sorted(self._dirty):
                    self.stats.disk_writes += 1
                    self.disk.write_block(block_id, self._raw.peek(block_id))
                flushed = len(self._dirty)
                self._dirty.clear()
                self.stats.flushes += 1
                # clean pages are evictable again
                self._raw.enforce_capacity()
                return flushed

    def discard_dirty(self) -> int:
        """Drop every dirty page *without* writing it (rollback support).

        The platter keeps whatever it last held for those blocks; both
        the raw bytes and any decoded plaintext cached for them are
        dropped, so a rolled-back page can never be served.  Returns the
        number of pages discarded.
        """
        with self._lock:
            dropped = len(self._dirty)
            for block_id in self._dirty:
                self._poison_inflight(block_id)
                self._raw.invalidate(block_id)
                self.decoded.invalidate(block_id)
            self._dirty.clear()
            self._raw.enforce_capacity()
            return dropped

    def collect_delta(self, since_epoch: int) -> DiskDelta | None:
        """The committed block changes sealed after ``since_epoch``.

        Returns a :class:`~repro.storage.journal.DiskDelta` carrying the
        current at-rest bytes of every block the disk's journal sealed
        after that epoch, or ``None`` when no delta can be served: the
        journal was truncated/tainted past the epoch, or dirty pages
        make the platter a non-authoritative snapshot (a delta must
        describe *committed* state only).
        """
        with self._lock:
            if self._dirty:
                return None
            changed = self.disk.journal.collect_since(since_epoch)
            if changed is None:
                return None
            return DiskDelta(
                num_blocks=self.disk.num_blocks,
                block_writes=self.disk.snapshot_blocks(sorted(changed)),
            )

    def invalidate(self, block_id: int) -> None:
        """Drop a block from both cache levels (e.g. after deallocation).

        A dirty page is dropped unwritten: the block is dead, its bytes
        must not resurface at the next flush.
        """
        with self._lock:
            self._poison_inflight(block_id)
            self._raw.invalidate(block_id)
            self.decoded.invalidate(block_id)
            self._dirty.discard(block_id)

    def reset_stats(self) -> None:
        """Zero every statistics surface the pager owns.

        :class:`PagerStats` and the two cache levels' own
        :class:`~repro.storage.cache.CacheStats` count overlapping
        events (a raw read bumps both tallies); resetting them together
        keeps the surfaces agreeing.
        """
        with self._lock:
            self.stats.reset()
            self._raw.stats.reset()
            self.decoded.stats.reset()

    def clear_cache(self) -> None:
        """Empty both cache levels; used to force cold benchmark runs.

        Dirty pages are flushed first -- clearing the cache must never
        lose written data.  Never call this inside a transaction scope:
        flushing would push uncommitted pages past the rollback point
        (use :meth:`drop_clean_cache` there instead).
        """
        with self._lock:
            self.flush()
            self._poison_all_inflight()
            self._raw.clear()
            self.decoded.clear()

    def drop_clean_cache(self) -> None:
        """Drop every *clean* cached page and all decoded views.

        The transaction-safe cold-cache path: dirty pages are neither
        flushed nor dropped, so uncommitted work stays exactly as
        discardable as it was.  Decoded views are always safe to drop --
        they are derived data, re-decodable from whatever the raw path
        serves next.
        """
        with self._lock:
            self._poison_all_inflight()
            for block_id in self._raw.keys():
                if block_id not in self._dirty:
                    self._raw.invalidate(block_id)
            self.decoded.clear()

    def _write_if_dirty(self, block_id: int, data: bytes) -> None:
        """Raw-cache eviction callback: a dirty page's last chance to
        reach disk (runs under both the pager and cache locks)."""
        if block_id in self._dirty:
            self.stats.disk_writes += 1
            self.stats.dirty_evictions += 1
            self.disk.write_block(block_id, data)
            self._dirty.discard(block_id)
