"""Block allocation and a raw-block LRU cache with two write policies.

The pager sits between the B-Tree and the simulated disk.  Its cache holds
blocks in their *post-transform* (i.e. still plain, the disk transform is
below us) byte form as returned by the disk read path; decoding a node --
which is where the per-triplet cryptography lives -- always happens above
the pager, so cache hits save disk I/O but never hide cryptographic cost.
That separation keeps the decryption counts of experiments C1/C3 faithful
to the paper's model, where every node *visit* pays its decryptions.

Two write policies are offered:

* **write-through** (the default): every :meth:`Pager.write` goes straight
  to the disk.  This is the mode the paper's experiments (C1/C3 and the
  E-series) must run in -- each node rewrite is a disk write, so the
  reported I/O counts match the paper's per-operation cost model exactly.
* **write-back** (``write_back=True``): writes only mark the cached copy
  dirty; bytes reach the disk when the block is evicted (evict-writes-
  dirty), on :meth:`Pager.flush`, or never if :meth:`Pager.discard_dirty`
  drops them first.  Repeated rewrites of a hot block -- the superblock,
  a leaf absorbing a batch of inserts -- coalesce into one disk write,
  which is the amortisation a transactional commit layer builds on.
  Deferral happens *below* the node codec, so cryptographic counts are
  identical in both modes; only disk-write counts change.

:class:`PagerStats` tracks both the read-side cache effectiveness and the
write-side amplification (logical write requests vs. blocks that actually
hit the platter), which benchmark C7 reports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.disk import SimulatedDisk


@dataclass
class PagerStats:
    """Cache-effectiveness and write-traffic counters.

    ``write_requests`` counts logical writes asked of the pager;
    ``disk_writes`` counts blocks the pager actually pushed to disk.  In
    write-through mode the two are equal; in write-back mode coalescing
    makes ``disk_writes`` the smaller number.
    """

    hits: int = 0
    misses: int = 0
    write_requests: int = 0
    disk_writes: int = 0
    dirty_evictions: int = 0
    flushes: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.write_requests = 0
        self.disk_writes = 0
        self.dirty_evictions = 0
        self.flushes = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def writes_deferred(self) -> int:
        """Logical writes that never became their own disk write."""
        return self.write_requests - self.disk_writes

    @property
    def write_amplification(self) -> float:
        """Disk writes per logical write (1.0 in write-through mode)."""
        return self.disk_writes / self.write_requests if self.write_requests else 0.0


class Pager:
    """LRU block cache with write-through or write-back semantics.

    Parameters
    ----------
    disk:
        The underlying block device.
    cache_blocks:
        Cache capacity in blocks; ``0`` disables caching entirely, which
        the benchmarks use to measure cold-traversal costs.  (With
        ``write_back=True`` and no cache, every dirty page is evicted --
        and therefore written -- immediately, degenerating to
        write-through.)
    write_back:
        ``False`` (default) writes through to disk on every
        :meth:`write`; ``True`` defers writes to eviction or
        :meth:`flush`.

    Attributes
    ----------
    retain_dirty:
        When ``True``, eviction never selects a dirty page (the cache may
        temporarily exceed ``cache_blocks``).  A transaction sets this so
        that uncommitted pages stay discardable for rollback; the bound
        is restored by the :meth:`flush` or :meth:`discard_dirty` that
        ends the transaction.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        cache_blocks: int = 64,
        write_back: bool = False,
    ) -> None:
        self.disk = disk
        self.capacity = cache_blocks
        self.write_back = write_back
        self.retain_dirty = False
        self.stats = PagerStats()
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        # Concurrent readers admitted by the database's reader--writer
        # lock still *mutate* the pager (LRU reorder, fill-on-miss,
        # counters); this mutex keeps that mutation atomic.  Reentrant
        # because flush()/clear_cache() nest.
        self._lock = threading.RLock()

    def allocate(self) -> int:
        """Reserve a fresh block id."""
        return self.disk.allocate()

    @property
    def dirty_blocks(self) -> int:
        """Number of cached pages holding unwritten data."""
        with self._lock:
            return len(self._dirty)

    def read(self, block_id: int) -> bytes:
        """Read block bytes, consulting the cache first.

        In write-back mode the cache is authoritative: a dirty page is
        newer than the platter, so the cached copy is always returned.

        The mutex is *not* held across the disk read: the disk-level
        transform is where the cryptography happens, and concurrent
        readers missing on different blocks must be able to decipher in
        parallel.  Racing misses on the same block both read the platter;
        only the first fills the cache.
        """
        with self._lock:
            cached = self._cache.get(block_id)
            if cached is not None:
                self._cache.move_to_end(block_id)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        data = self.disk.read_block(block_id)
        with self._lock:
            current = self._cache.get(block_id)
            if current is not None:
                # a racing write (possibly dirty, newer than the platter)
                # or fill beat us; theirs is authoritative
                return current
            self._remember(block_id, data)
        return data

    def write(self, block_id: int, data: bytes) -> None:
        """Write a block: through to disk, or into the dirty set."""
        with self._lock:
            self.stats.write_requests += 1
            if self.write_back:
                self._cache[block_id] = data
                self._cache.move_to_end(block_id)
                self._dirty.add(block_id)
                self._evict_over_capacity()
            else:
                self.stats.disk_writes += 1
                self.disk.write_block(block_id, data)
                self._remember(block_id, data)

    def flush(self) -> int:
        """Write every dirty page to disk; returns the number written.

        A no-op (and uncounted) when nothing is dirty, so write-through
        callers can flush unconditionally at commit points.
        """
        with self._lock:
            if not self._dirty:
                return 0
            for block_id in sorted(self._dirty):
                self.stats.disk_writes += 1
                self.disk.write_block(block_id, self._cache[block_id])
            flushed = len(self._dirty)
            self._dirty.clear()
            self.stats.flushes += 1
            self._evict_over_capacity()
            return flushed

    def discard_dirty(self) -> int:
        """Drop every dirty page *without* writing it (rollback support).

        The platter keeps whatever it last held for those blocks; returns
        the number of pages discarded.
        """
        with self._lock:
            dropped = len(self._dirty)
            for block_id in self._dirty:
                self._cache.pop(block_id, None)
            self._dirty.clear()
            self._evict_over_capacity()
            return dropped

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the cache (e.g. after deallocation).

        A dirty page is dropped unwritten: the block is dead, its bytes
        must not resurface at the next flush.
        """
        with self._lock:
            self._cache.pop(block_id, None)
            self._dirty.discard(block_id)

    def clear_cache(self) -> None:
        """Empty the cache; used to force cold benchmark runs.

        Dirty pages are flushed first -- clearing the cache must never
        lose written data.
        """
        with self._lock:
            self.flush()
            self._cache.clear()

    def _remember(self, block_id: int, data: bytes) -> None:
        # callers hold self._lock
        if not self.capacity:
            return
        self._cache[block_id] = data
        self._cache.move_to_end(block_id)
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        while len(self._cache) > self.capacity:
            victim = next(iter(self._cache))  # LRU order
            if victim in self._dirty:
                if self.retain_dirty:
                    victim = next(
                        (b for b in self._cache if b not in self._dirty), None
                    )
                    if victim is None:
                        return  # everything is dirty and pinned
                else:
                    # evict-writes-dirty: the page's last chance to reach disk
                    self.stats.disk_writes += 1
                    self.stats.dirty_evictions += 1
                    self.disk.write_block(victim, self._cache[victim])
                    self._dirty.discard(victim)
            self._cache.pop(victim)
