"""Block allocation and a raw-block LRU cache.

The pager sits between the B-Tree and the simulated disk.  Its cache holds
blocks in their *post-transform* (i.e. still plain, the disk transform is
below us) byte form as returned by the disk read path; decoding a node --
which is where the per-triplet cryptography lives -- always happens above
the pager, so cache hits save disk I/O but never hide cryptographic cost.
That separation keeps the decryption counts of experiments C1/C3 faithful
to the paper's model, where every node *visit* pays its decryptions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.disk import SimulatedDisk


@dataclass
class PagerStats:
    """Cache effectiveness counters."""

    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Pager:
    """Write-through pager with an optional LRU cache of block bytes.

    Parameters
    ----------
    disk:
        The underlying block device.
    cache_blocks:
        Cache capacity in blocks; ``0`` disables caching entirely, which
        the benchmarks use to measure cold-traversal costs.
    """

    def __init__(self, disk: SimulatedDisk, cache_blocks: int = 64) -> None:
        self.disk = disk
        self.capacity = cache_blocks
        self.stats = PagerStats()
        self._cache: OrderedDict[int, bytes] = OrderedDict()

    def allocate(self) -> int:
        """Reserve a fresh block id."""
        return self.disk.allocate()

    def read(self, block_id: int) -> bytes:
        """Read block bytes, consulting the cache first."""
        if self.capacity:
            cached = self._cache.get(block_id)
            if cached is not None:
                self._cache.move_to_end(block_id)
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        data = self.disk.read_block(block_id)
        self._remember(block_id, data)
        return data

    def write(self, block_id: int, data: bytes) -> None:
        """Write through to disk and refresh the cache."""
        self.disk.write_block(block_id, data)
        self._remember(block_id, data)

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the cache (e.g. after deallocation)."""
        self._cache.pop(block_id, None)

    def clear_cache(self) -> None:
        """Empty the cache; used to force cold benchmark runs."""
        self._cache.clear()

    def _remember(self, block_id: int, data: bytes) -> None:
        if not self.capacity:
            return
        self._cache[block_id] = data
        self._cache.move_to_end(block_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
