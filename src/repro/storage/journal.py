"""Change journals: the bookkeeping behind incremental replica sync.

PR 4's process-pool executor keeps one worker *replica* per shard and
re-ships the shard's **entire** platter whenever the parent's copy has
changed -- O(database size) per mutation under mixed read/write
workloads.  The remedy is classical log shipping, adapted to the
enciphered setting: the parent journals *which* blocks changed, and a
re-sync ships only those blocks' at-rest (still enciphered) bytes plus
the small in-memory metadata.  The cipher envelope never changes shape
-- the worker receives exactly the bytes already resting on the parent's
platters, so the security analysis of the full-ship protocol carries
over verbatim.

:class:`ChangeJournal` is the per-device ledger.  Writers ``note`` the
ids they mutate into an *open* set; every committed cluster-level
mutation ``seal``\\ s the open set under the new epoch number; a sync
``collect_since(worker_epoch)`` unions the sealed sets newer than the
worker's epoch.  Three events break delta-serveability and force the
next sync back to a full ship:

* the journal has never been *checkpointed* (no full ship yet);
* a wholesale state replacement (``taint``, e.g. ``import_state``);
* history was dropped past the consumer's epoch (``max_epochs`` bound,
  or an explicit ``truncate`` after a full ship -- the snapshot subsumes
  every older entry).

The delta dataclasses (:class:`DiskDelta`, :class:`RecordStoreDelta`,
:class:`ShardDelta`) are the picklable wire format the executor ships;
they carry ids and at-rest bytes only -- bytes are fetched from the
platter at *collect* time, so repeated rewrites of one block ship its
final content once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


class ChangeJournal:
    """Epoch-tagged sets of mutated item ids (block ids, slot ids).

    Thread-safe and lock-leaf: every method takes only the journal's own
    mutex, so it may be called from under any owner lock.  ``note`` is
    the hot-path operation -- one set-add under an uncontended lock.

    ``on_seal`` (optional) is invoked as ``on_seal(epoch, sealed_ids)``
    after every :meth:`seal`, *outside* the journal's mutex so the
    callback may take its owner's locks freely.  It is how a durable
    block device learns that an epoch closed and must reach its
    write-ahead log -- the journal stays the single source of "what
    changed, under which epoch" for both replica sync and persistence.
    Callbacks must tolerate their work being coalesced: under group
    commit several sealed epochs can reach durability in one shared WAL
    round, so an individual ``on_seal`` invocation may find a leader has
    already flushed everything it would have synced.
    """

    def __init__(
        self,
        max_epochs: int = 64,
        on_seal: "Callable[[int, frozenset[int]], None] | None" = None,
    ) -> None:
        if max_epochs < 1:
            raise ValueError("a journal must retain at least one epoch")
        self.max_epochs = max_epochs
        self.on_seal = on_seal
        self._lock = threading.Lock()
        self._open: set[int] = set()
        self._sealed: "OrderedDict[int, frozenset[int]]" = OrderedDict()
        #: Earliest epoch a delta can be served *since*; ``None`` until
        #: the first checkpoint (seal-from-unknown or truncate).
        self._floor: int | None = None

    # -- producer side ---------------------------------------------------

    def note(self, item: int) -> None:
        """Record that ``item`` mutated since the last seal."""
        with self._lock:
            self._open.add(item)

    def note_many(self, items) -> None:
        with self._lock:
            self._open.update(items)

    def seal(self, epoch: int) -> None:
        """Close the open set under ``epoch``.

        Without a prior checkpoint the history *before* this seal is
        unknown (e.g. right after a wholesale import), so the entry is
        not kept: the epoch itself becomes the checkpoint -- deltas are
        serveable for consumers at ``epoch`` or newer, which is exactly
        the set of consumers that can exist (a consumer acquires an
        epoch only through a full snapshot or a delta built on one).
        """
        with self._lock:
            sealed_ids = frozenset(self._open)
            if self._floor is None:
                self._open.clear()
                self._sealed.clear()
                self._floor = epoch
            else:
                if epoch in self._sealed:
                    # a repeated seal merges rather than overwrites: an
                    # overwrite would silently drop the first seal's ids
                    # from history while consumers at older epochs still
                    # rely on them
                    self._sealed[epoch] = self._sealed[epoch] | sealed_ids
                else:
                    self._sealed[epoch] = sealed_ids
                self._open.clear()
                while len(self._sealed) > self.max_epochs:
                    dropped, _ = self._sealed.popitem(last=False)
                    self._floor = dropped  # history <= dropped is gone
        if self.on_seal is not None:
            # outside the mutex: the callback (a durable device's
            # WAL-append) takes its owner's locks and must not nest
            # inside this leaf lock
            self.on_seal(epoch, sealed_ids)

    def taint(self) -> None:
        """Wholesale state replacement: all prior history is void."""
        with self._lock:
            self._open.clear()
            self._sealed.clear()
            self._floor = None

    def truncate(self, epoch: int) -> None:
        """A consumer holds a full snapshot at ``epoch``; drop older entries.

        The open set is cleared too: the caller snapshots *and* truncates
        under one owner lock, so everything noted so far is inside the
        snapshot the consumer just received.
        """
        with self._lock:
            self._open.clear()
            for sealed_epoch in [e for e in self._sealed if e <= epoch]:
                del self._sealed[sealed_epoch]
            if self._floor is None or epoch > self._floor:
                self._floor = epoch

    # -- consumer side ---------------------------------------------------

    def collect_since(self, epoch: int) -> set[int] | None:
        """Union of ids sealed after ``epoch``; ``None`` if unserveable.

        ``None`` means the journal cannot prove it saw every change since
        ``epoch`` (never checkpointed, tainted, or truncated past it) and
        the consumer needs a full snapshot instead.  The open
        (not-yet-sealed) set is *excluded*: unsealed changes belong to no
        epoch yet, and the epoch-matching consumer protocol never asks
        for them.
        """
        with self._lock:
            if self._floor is None or epoch < self._floor:
                return None
            out: set[int] = set()
            for sealed_epoch, ids in self._sealed.items():
                if sealed_epoch > epoch:
                    out |= ids
            return out

    # -- introspection ---------------------------------------------------

    @property
    def has_open(self) -> bool:
        """True when mutations were noted since the last seal."""
        with self._lock:
            return bool(self._open)

    @property
    def floor(self) -> int | None:
        with self._lock:
            return self._floor

    def snapshot(self) -> dict[str, object]:
        """Debug/stats view: open count, retained epochs, floor."""
        with self._lock:
            return {
                "open_items": len(self._open),
                "sealed_epochs": len(self._sealed),
                "floor": self._floor,
            }


# -- wire format -----------------------------------------------------------


def contiguous_runs(ids) -> list[tuple[int, int]]:
    """Compress an id set into sorted maximal ``(start, count)`` runs.

    Mutated block ids cluster heavily (a node split touches neighbouring
    blocks; record appends fill consecutive slots), so a run encoding is
    usually far smaller than one id word per block.
    """
    runs: list[tuple[int, int]] = []
    start = prev = None
    for item in sorted(ids):
        if prev is not None and item == prev + 1:
            prev = item
            continue
        if start is not None:
            runs.append((start, prev - start + 1))
        start = prev = item
    if start is not None:
        runs.append((start, prev - start + 1))
    return runs


def _id_index_bytes(block_writes: dict[int, bytes | None]) -> int:
    """Bytes the id index costs on the wire: 8 per id flat, 16 per run
    compressed -- whichever encoding :meth:`DiskDelta.__getstate__` picks."""
    flat = 8 * len(block_writes)
    return min(flat, 16 * len(contiguous_runs(block_writes)))


def _blocks_payload_bytes(block_writes: dict[int, bytes | None]) -> int:
    """Honest byte accounting: at-rest payload plus the id index."""
    return sum(
        len(data) for data in block_writes.values() if data is not None
    ) + _id_index_bytes(block_writes)


@dataclass
class DiskDelta:
    """Targeted update for one :class:`~repro.storage.disk.SimulatedDisk`.

    ``block_writes`` maps block id to the at-rest bytes now on the
    parent's platter (``None`` for an allocated-but-never-written slot);
    ``num_blocks`` lets the replica grow its allocation to match.

    On the wire (pickle) the id index travels run-compressed whenever
    runs of adjacent ids make ``(start, count)`` pairs cheaper than one
    word per id -- the common case, since B-tree splits and record
    appends touch neighbouring blocks.  ``payload_bytes`` accounts for
    whichever encoding actually ships, and :attr:`run_bytes_saved`
    reports the difference (surfaced through ``sync_stats()``).
    """

    num_blocks: int
    block_writes: dict[int, bytes | None]

    @property
    def id_runs(self) -> list[tuple[int, int]]:
        return contiguous_runs(self.block_writes)

    @property
    def run_bytes_saved(self) -> int:
        """Id-index bytes the run encoding saves over one word per id."""
        return 8 * len(self.block_writes) - _id_index_bytes(self.block_writes)

    @property
    def payload_bytes(self) -> int:
        return _blocks_payload_bytes(self.block_writes) + 8

    def __getstate__(self) -> dict[str, object]:
        runs = contiguous_runs(self.block_writes)
        if 16 * len(runs) >= 8 * len(self.block_writes):
            return {"num_blocks": self.num_blocks, "block_writes": self.block_writes}
        payloads = [
            self.block_writes[block_id]
            for start, count in runs
            for block_id in range(start, start + count)
        ]
        return {"num_blocks": self.num_blocks, "runs": runs, "payloads": payloads}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.num_blocks = state["num_blocks"]
        if "block_writes" in state:
            self.block_writes = state["block_writes"]
        else:
            ids = (
                block_id
                for start, count in state["runs"]
                for block_id in range(start, start + count)
            )
            self.block_writes = dict(zip(ids, state["payloads"]))


@dataclass
class RecordStoreDelta:
    """Changed record blocks plus the store's full slot metadata.

    The metadata (free list, count, open block) is tiny next to one
    block, so it ships whole on every delta; ``slot_writes`` is the
    slot-precise manifest of what changed (cache invalidation itself is
    block-grained, driven by ``disk.block_writes``) -- it is what ship
    accounting and debugging read to see *which records* moved, not
    just which blocks.
    """

    disk: DiskDelta
    slot_writes: list[int]
    free: list[int]
    count: int
    open_block: int | None
    open_slots: list[bytes]

    @property
    def payload_bytes(self) -> int:
        return (
            self.disk.payload_bytes
            + 8 * (len(self.slot_writes) + len(self.free))
            + sum(len(s) for s in self.open_slots)
            + 16
        )


@dataclass
class ShardDelta:
    """Everything a worker replica needs to catch up to ``epoch``.

    ``tree_state`` is the index's in-memory metadata (root id, key
    count, free node list) exactly as
    :meth:`~repro.btree.tree.BTree.snapshot_state` captures it, so the
    replica applies the delta without deciphering anything -- cipher and
    disk counters stay untouched by the state transfer itself.
    """

    index: int
    epoch: int
    node: DiskDelta
    records: RecordStoreDelta
    tree_state: tuple[int, int, list[int]]

    @property
    def payload_bytes(self) -> int:
        return self.node.payload_bytes + self.records.payload_bytes + 32

    @property
    def blocks_shipped(self) -> int:
        return len(self.node.block_writes) + len(self.records.disk.block_writes)

    @property
    def run_bytes_saved(self) -> int:
        """Id-index bytes saved by run-compressing both devices' deltas."""
        return self.node.run_bytes_saved + self.records.disk.run_bytes_saved
