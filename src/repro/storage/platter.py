"""A durable single-file block device with WAL crash recovery.

:class:`FilePlatter` gives the enciphered-database-at-rest story an
actual at-rest form: one self-describing file per device, in the spirit
of the ubik ``.DB0`` layout (magic, ``{epoch, counter}`` version pair,
length-prefixed values), holding exactly the bytes
:class:`~repro.storage.disk.SimulatedDisk` would hold in memory --
the :class:`~repro.storage.device.BlockTransform` still runs at the
read/write boundary, so what rests in the file is ciphertext.

On-disk layout (all integers little-endian)::

    main file (``<name>.platter``)
    +-----------------------------+ 0
    | header slot A (64 bytes)    |   magic "HSPL1990", version u16,
    +-----------------------------+ 64  flags u16, block_size u32,
    | header slot B (64 bytes)    |   counter u64, epoch u64,
    +-----------------------------+ 128 block_count u64, pad, crc32
    | block record 0              |
    |   len  u32  (= payload+1;   |   record i lives at the fixed
    |             0 = unwritten)  |   offset 128 + i*(8+block_size),
    |   crc  u32  (id64 || bytes) |   so a record never moves and a
    |   payload (<= block_size)   |   torn rewrite clobbers only its
    +-----------------------------+   own slot
    | block record 1 ...          |

    sidecar WAL (``<name>.platter.wal``)
    +-----------------------------+ 0
    | magic "HSWL1990", ver, pad  |   16-byte header
    +-----------------------------+ 16
    | frame: body_len u32, crc u32|   body = counter u64, epoch u64,
    |        body                 |   block_count u64, nentries u32,
    +-----------------------------+   then per entry: id u64,
    | frame ...                   |   len u32 (payload+1), payload

Durability protocol (one :meth:`sync` = one *flush generation*, the
``counter``):

1. every pending at-rest write is packed into **one WAL frame**,
   appended and fsynced -- the frame *is* the commit record;
2. the writes land in the main file at their fixed record offsets,
   then the main file is fsynced;
3. the 64-byte header -- the only sub-sector-sized write in the
   protocol -- is rewritten **in the alternate slot** (``counter & 1``)
   and fsynced; readers pick the valid slot with the higher counter,
   so a torn header write simply loses the flip, not the file.

A crash between 1 and 3 is healed on :meth:`open <FilePlatter>`: WAL
frames with ``counter`` above the header's are replayed (idempotent --
records live at fixed offsets), then the header is flipped.  A torn
*tail* frame (the crash hit the WAL append itself) fails its CRC and is
truncated away -- that generation never committed.  A block record
whose CRC fails on read is repaired from the newest WAL frame that
wrote it; with the WAL checkpointed, corruption is unrepairable and
surfaces as :class:`~repro.exceptions.PlatterFormatError`.

With ``group_commit=True`` concurrent :meth:`sync` callers coalesce:
one leader runs the three-step protocol over *everything* staged at
that moment -- several committers' writes travel in one frame, behind
one WAL fsync, one apply fsync and one header flip -- while followers
block on the leader's result.  The generation counter still advances by
exactly one per frame, so recovery replays a grouped history exactly
like a serial one; ``group_rounds``/``group_joins`` in
:meth:`durability_snapshot` report how often batching paid off.

The platter subscribes to its own change journal's ``on_seal`` hook:
when the cluster seals an epoch that still has unsynced writes (a
write-batch under ``autocommit=False``), the seal itself forces the
sync, so *sealed implies durable* -- the WAL is the journal's
persistent form, which is why epochs ride inside every frame.

``fault_hook`` is the crash-injection seam for the recovery tests: when
set, it is called with a named crash point (``"sync:start"``,
``"wal:appended"``, ``"apply:block"``, ``"apply:done"``,
``"header:flipped"``) and may raise to simulate the process dying right
there; :meth:`abandon` then drops the file handles without any
tidy-up, exactly like a kill.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from time import perf_counter

from repro.exceptions import BlockBoundsError, PlatterFormatError, StorageError
from repro.storage.device import DURABILITY_FIELDS, BlockDevice, BlockTransform

__all__ = ["FilePlatter", "MAGIC", "WAL_MAGIC", "FORMAT_VERSION"]

MAGIC = b"HSPL1990"
WAL_MAGIC = b"HSWL1990"
FORMAT_VERSION = 1

#: Header slot: magic, version, flags, block_size, counter, epoch,
#: block_count, reserved, crc32 over the first 60 bytes.
_HEADER = struct.Struct("<8sHHIQQQ20sI")
_HEADER_SIZE = 64
_DATA_OFFSET = 2 * _HEADER_SIZE
assert _HEADER.size == _HEADER_SIZE

_WAL_HEADER = struct.Struct("<8sH6s")
_WAL_DATA_OFFSET = 16
assert _WAL_HEADER.size == _WAL_DATA_OFFSET

#: WAL frame prefix (body length, body crc32) and body header
#: (counter, epoch, block_count, nentries); entries are id u64 +
#: len-field u32 + payload.
_FRAME_PREFIX = struct.Struct("<II")
_FRAME_BODY = struct.Struct("<QQQI")
_FRAME_ENTRY = struct.Struct("<QI")

#: Main-file block record prefix: len-field u32 (payload length + 1,
#: so 0 unambiguously means "never written"), crc32 u32.
_RECORD_PREFIX = struct.Struct("<II")
_RECORD_HEADER = _RECORD_PREFIX.size

#: Sentinel for "the at-rest bytes are unreadable" in the write-path
#: dedup compare -- unequal to any bytes and to None, so a write over a
#: corrupt record always journals and always lands.
_TORN = object()


def _block_crc(block_id: int, payload: bytes) -> int:
    return zlib.crc32(block_id.to_bytes(8, "little") + payload)


class _Frame:
    """One parsed WAL frame (transient: scan/replay/poll bookkeeping)."""

    __slots__ = ("counter", "epoch", "block_count", "entries")

    def __init__(self, counter, epoch, block_count, entries):
        self.counter = counter
        self.epoch = epoch
        self.block_count = block_count
        #: list of (block_id, payload | None, abs_payload_offset)
        self.entries = entries


class FilePlatter(BlockDevice):
    """A self-describing single-file block device with a sidecar WAL.

    Parameters
    ----------
    path:
        The main platter file.  The WAL lives beside it at
        ``<path>.wal``.
    block_size:
        Block capacity in bytes.  On open of an existing platter this
        must match the header (or be left at the default to adopt it).
    transform:
        Optional on-the-fly encipherment module; what reaches the file
        is its output.
    create:
        ``True`` -- create a fresh platter, failing if ``path`` exists;
        ``False`` -- open an existing one, failing if it does not;
        ``None`` (default) -- open if present, else create.
    fsync:
        When ``False``, skip the ``fsync`` calls (OS buffering only).
        Crash *recovery* still works against the bytes that made it to
        the file; the tests run mostly with ``fsync=False`` for speed
        and the benchmarks measure both.
    wal_limit_bytes:
        Auto-checkpoint threshold: after a sync that leaves the WAL
        larger than this, the WAL is truncated (the main file is
        already fully applied and header-flipped, so nothing is lost --
        only cross-handle :meth:`poll` continuity, which degrades to
        "resync wholesale").

    Write path: at-rest bytes stage in ``_pending`` (read-modify-write
    against the file for the journal's no-op dedup) and reach the file
    only at :meth:`sync` -- the device-level analogue of a write-back
    cache, and what makes "one commit = one WAL frame = one header
    flip" possible.  Reads prefer ``_pending`` (a handle must see its
    own writes) and otherwise hit the file; there is deliberately *no*
    device-level read cache -- the caches above (pager, record store)
    already serve hot reads, so a cold open here is honestly cold.
    """

    def __init__(
        self,
        path,
        block_size: int = 4096,
        transform: BlockTransform | None = None,
        *,
        create: bool | None = None,
        fsync: bool = True,
        wal_limit_bytes: int = 16 * 1024 * 1024,
        group_commit: bool = False,
        fsync_latency_s: float = 0.0,
        background_checkpoint: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.wal_path = self.path + ".wal"
        self.fsync = fsync
        self.wal_limit_bytes = wal_limit_bytes
        #: When True, the ``wal_limit_bytes`` auto-checkpoint runs on a
        #: daemon thread instead of inline at the end of :meth:`sync`,
        #: so a WAL-bound commit never stalls behind compaction.
        #: :meth:`checkpoint_now` remains the synchronous escape hatch.
        self.background_checkpoint = background_checkpoint
        self._ckpt_thread: threading.Thread | None = None
        self._ckpt_wake = threading.Event()
        self._ckpt_stop = False
        self._ckpt_error: Exception | None = None
        #: Group commit: concurrent :meth:`sync` callers coalesce -- one
        #: leader packs *everything* staged so far into a single WAL
        #: frame (one WAL fsync, one apply fsync, one header flip) while
        #: followers block on the leader's result instead of paying
        #: their own round.  The crash contract is unchanged: a grouped
        #: frame is still one atomic generation.
        self.group_commit = group_commit
        #: Modeled seconds charged per fsync (sleeps alongside the real
        #: call), the durable-device analogue of ``SimulatedDisk
        #: (latency_s=...)``: benchmarks arm it so commit batching shows
        #: up in wall time even on a RAM-backed CI filesystem.
        if fsync_latency_s < 0.0:
            raise StorageError(f"negative fsync latency: {fsync_latency_s}")
        self.fsync_latency_s = fsync_latency_s
        #: Crash-injection seam; see the module docstring.
        self.fault_hook = None

        # Group-commit state.  ``_stage_seq`` (guarded by ``_lock``)
        # counts staging events -- anything that makes the next sync
        # non-trivial; ``_durable_seq`` (guarded by ``_group``) is the
        # highest staging count some leader has made durable.  A sync
        # whose target is already durable joins that round for free.
        # Lock order: ``_group`` before ``_lock``, never the reverse.
        self._group = threading.Condition()
        self._stage_seq = 0
        self._durable_seq = 0
        self._group_leader = False

        exists = os.path.exists(self.path)
        if create is True and exists:
            raise StorageError(f"platter already exists: {self.path}")
        if create is False and not exists:
            raise StorageError(f"platter not found: {self.path}")

        self._lock = threading.RLock()
        self._closed = False
        self._pending: dict[int, bytes | None] = {}
        #: block id -> (absolute WAL payload offset, payload length):
        #: the newest WAL copy of the block, for CRC-failure repair.
        self._repair: dict[int, tuple[int, int]] = {}
        self._durability = {field: 0 for field in DURABILITY_FIELDS}
        self._last_sealed_epoch = 0

        if exists:
            self._fh = open(self.path, "r+b", buffering=0)
            counter, epoch, count, disk_block_size = self._read_header()
            if block_size not in (4096, disk_block_size):
                raise StorageError(
                    f"platter {self.path} holds {disk_block_size}-byte blocks, "
                    f"not {block_size}"
                )
            super().__init__(disk_block_size, transform)
            self._durable_counter = counter
            self._durable_epoch = epoch
            self._durable_count = count
            self._count = count
            self._open_wal(create=not os.path.exists(self.wal_path))
            self._recover()
        else:
            super().__init__(block_size, transform)
            self._fh = open(self.path, "x+b", buffering=0)
            self._durable_counter = 0
            self._durable_epoch = 0
            self._durable_count = 0
            self._count = 0
            self._write_header_slot(0, 0, 0)
            self._fsync_main()
            self._open_wal(create=True)
        self._last_sealed_epoch = self._durable_epoch

    # -- header ----------------------------------------------------------

    def _pack_header(self, counter: int, epoch: int, block_count: int) -> bytes:
        body = _HEADER.pack(
            MAGIC, FORMAT_VERSION, 0, self.block_size, counter, epoch,
            block_count, b"\x00" * 20, 0,
        )
        return body[:-4] + struct.pack("<I", zlib.crc32(body[:-4]))

    def _write_header_slot(self, counter: int, epoch: int, block_count: int) -> None:
        slot = counter & 1
        self._fh.seek(slot * _HEADER_SIZE)
        self._fh.write(self._pack_header(counter, epoch, block_count))

    @staticmethod
    def _parse_header_slot(raw: bytes):
        """Return (counter, epoch, block_count, block_size) or None."""
        if len(raw) != _HEADER_SIZE:
            return None
        magic, version, _flags, block_size, counter, epoch, count, _pad, crc = (
            _HEADER.unpack(raw)
        )
        if magic != MAGIC or crc != zlib.crc32(raw[:-4]):
            return None
        if version != FORMAT_VERSION:
            raise PlatterFormatError(
                f"platter format version {version} not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        return counter, epoch, count, block_size

    def _read_header(self):
        """Pick the valid header slot with the higher counter."""
        self._fh.seek(0)
        raw = self._fh.read(_DATA_OFFSET)
        best = None
        for slot in (0, 1):
            parsed = self._parse_header_slot(raw[slot * 64 : slot * 64 + 64])
            if parsed is not None and (best is None or parsed[0] > best[0]):
                best = parsed
        if best is None:
            raise PlatterFormatError(
                f"{self.path}: no valid platter header (bad magic or checksum "
                "in both slots)"
            )
        return best

    # -- WAL -------------------------------------------------------------

    def _open_wal(self, create: bool) -> None:
        if create:
            self._wal = open(self.wal_path, "w+b", buffering=0)
            self._wal.write(_WAL_HEADER.pack(WAL_MAGIC, FORMAT_VERSION, b"\x00" * 6))
            self._fsync_wal()
        else:
            self._wal = open(self.wal_path, "r+b", buffering=0)
            self._wal.seek(0)
            raw = self._wal.read(_WAL_DATA_OFFSET)
            if len(raw) != _WAL_DATA_OFFSET or raw[:8] != WAL_MAGIC:
                raise PlatterFormatError(f"{self.wal_path}: not a platter WAL")

    def _scan_wal(self) -> tuple[list[_Frame], int]:
        """Parse every intact frame; return (frames, end-of-good-bytes).

        Stops at the first torn frame -- a short or checksum-failed
        tail is the signature of a crash mid-append, and nothing after
        it can be trusted (appends are strictly ordered).
        """
        self._wal.seek(0, os.SEEK_END)
        size = self._wal.tell()
        self._wal.seek(_WAL_DATA_OFFSET)
        frames: list[_Frame] = []
        good_end = _WAL_DATA_OFFSET
        offset = _WAL_DATA_OFFSET
        while offset + _FRAME_PREFIX.size <= size:
            self._wal.seek(offset)
            body_len, crc = _FRAME_PREFIX.unpack(self._wal.read(_FRAME_PREFIX.size))
            body_start = offset + _FRAME_PREFIX.size
            if body_start + body_len > size:
                break  # torn tail: the append never finished
            body = self._wal.read(body_len)
            if len(body) != body_len or zlib.crc32(body) != crc:
                break
            counter, epoch, block_count, nentries = _FRAME_BODY.unpack_from(body, 0)
            pos = _FRAME_BODY.size
            entries = []
            try:
                for _ in range(nentries):
                    block_id, len_field = _FRAME_ENTRY.unpack_from(body, pos)
                    pos += _FRAME_ENTRY.size
                    if len_field == 0:
                        entries.append((block_id, None, 0))
                    else:
                        payload = body[pos : pos + len_field - 1]
                        if len(payload) != len_field - 1:
                            raise PlatterFormatError("frame body underrun")
                        entries.append((block_id, payload, body_start + pos))
                        pos += len_field - 1
            except (struct.error, PlatterFormatError):
                break  # CRC collided with garbage; treat as torn
            if frames and counter <= frames[-1].counter:
                raise PlatterFormatError(
                    f"{self.wal_path}: frame counters not increasing "
                    f"({frames[-1].counter} then {counter})"
                )
            frames.append(_Frame(counter, epoch, block_count, entries))
            good_end = body_start + body_len
            offset = good_end
        return frames, good_end

    def _index_frames(self, frames: list[_Frame]) -> None:
        for frame in frames:
            for block_id, payload, payload_off in frame.entries:
                if payload is not None:
                    self._repair[block_id] = (payload_off, len(payload))
                else:
                    self._repair.pop(block_id, None)

    # -- recovery --------------------------------------------------------

    def _recover(self) -> None:
        """Replay sealed-but-not-applied WAL frames; truncate torn tail."""
        frames, good_end = self._scan_wal()
        self._wal.seek(0, os.SEEK_END)
        if self._wal.tell() > good_end:
            self._wal.truncate(good_end)
            self._fsync_wal()
        replay = [f for f in frames if f.counter > self._durable_counter]
        expected = self._durable_counter + 1
        for frame in replay:
            if frame.counter != expected:
                raise PlatterFormatError(
                    f"{self.wal_path}: generation {expected} missing "
                    f"(found {frame.counter}); the log cannot complete the "
                    "interrupted flush"
                )
            for block_id, payload, _off in frame.entries:
                self._write_record(block_id, payload)
            expected += 1
            self._durability["frames_replayed"] += 1
        if replay:
            self._fsync_main()
            last = replay[-1]
            self._write_header_slot(last.counter, last.epoch, last.block_count)
            self._fsync_main()
            self._durability["header_flips"] += 1
            self.stats.header_flips += 1
            self._durable_counter = last.counter
            self._durable_epoch = last.epoch
            self._durable_count = last.block_count
            self._count = last.block_count
        self._index_frames(frames)

    # -- main-file records -----------------------------------------------

    def _record_offset(self, block_id: int) -> int:
        return _DATA_OFFSET + block_id * (_RECORD_HEADER + self.block_size)

    def _write_record(self, block_id: int, payload: bytes | None) -> None:
        self._fh.seek(self._record_offset(block_id))
        if payload is None:
            self._fh.write(_RECORD_PREFIX.pack(0, 0))
        else:
            self._fh.write(
                _RECORD_PREFIX.pack(len(payload) + 1, _block_crc(block_id, payload))
                + payload
            )

    def _read_record(self, block_id: int) -> bytes | None:
        """At-rest bytes straight from the file; ``None`` if never written.

        Raises :class:`PlatterFormatError` on a CRC mismatch or a
        short read -- the caller routes that through WAL repair.
        """
        self._fh.seek(self._record_offset(block_id))
        prefix = self._fh.read(_RECORD_HEADER)
        if len(prefix) < _RECORD_HEADER:
            return None  # beyond EOF: allocated, never synced
        len_field, crc = _RECORD_PREFIX.unpack(prefix)
        if len_field == 0:
            return None
        if len_field - 1 > self.block_size:
            raise PlatterFormatError(
                f"block {block_id}: length field {len_field - 1} overflows "
                f"{self.block_size}-byte records"
            )
        payload = self._fh.read(len_field - 1)
        if len(payload) != len_field - 1 or _block_crc(block_id, payload) != crc:
            raise PlatterFormatError(f"block {block_id}: record checksum mismatch")
        return payload

    def _repair_record(self, block_id: int) -> bytes:
        """Rewrite a checksum-failed record from its newest WAL copy."""
        entry = self._repair.get(block_id)
        if entry is None:
            raise PlatterFormatError(
                f"block {block_id}: record checksum mismatch and no WAL copy "
                "to repair from (log was checkpointed)"
            )
        payload_off, payload_len = entry
        self._wal.seek(payload_off)
        payload = self._wal.read(payload_len)
        if len(payload) != payload_len:
            raise PlatterFormatError(
                f"block {block_id}: WAL repair copy truncated"
            )
        self._write_record(block_id, payload)
        if self.fsync:
            self._fsync_main()
        self._durability["blocks_repaired"] += 1
        return payload

    def _at_rest(self, block_id: int) -> bytes | None:
        """Current at-rest bytes: pending overlay first, then the file."""
        if block_id in self._pending:
            return self._pending[block_id]
        try:
            return self._read_record(block_id)
        except PlatterFormatError:
            return self._repair_record(block_id)

    def _fsync_main(self) -> None:
        if self.fsync:
            with self.tracer.trace("platter.fsync"):
                os.fsync(self._fh.fileno())
                if self.fsync_latency_s > 0.0:
                    time.sleep(self.fsync_latency_s)
            self.stats.fsyncs += 1

    def _fsync_wal(self) -> None:
        if self.fsync:
            with self.tracer.trace("platter.fsync"):
                os.fsync(self._wal.fileno())
                if self.fsync_latency_s > 0.0:
                    time.sleep(self.fsync_latency_s)
            self.stats.fsyncs += 1

    def _fault(self, point: str) -> None:
        # the shared injector seam first (REPRO_FAULTS / attach_faults),
        # then the legacy per-instance hook the recovery tests predate it with
        if self.faults is not None:
            self.faults.crash_point(point)
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    # -- allocation ------------------------------------------------------

    def allocate(self) -> int:
        with self._lock:
            block_id = self._count
            self._count += 1
            self._stage_seq += 1
            return block_id

    @property
    def num_blocks(self) -> int:
        return self._count

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < self._count:
            raise BlockBoundsError(
                f"block {block_id} outside device of {self._count} blocks",
                block_id=block_id,
            )

    # -- I/O -------------------------------------------------------------

    def _store(self, block_id: int, stored: bytes) -> None:
        with self._lock:
            try:
                current = self._at_rest(block_id)
            except PlatterFormatError:
                current = _TORN  # unrepairable; this write heals it
            if current is not None:
                self.stats.overwrites += 1
            if current != stored:
                self.journal.note(block_id)
                self._pending[block_id] = stored
                self._stage_seq += 1
            self.stats.writes += 1
            self.stats.bytes_written += len(stored)

    def _fetch(self, block_id: int) -> bytes:
        start = perf_counter()
        with self._lock:
            stored = self._at_rest(block_id)
            if stored is None:
                raise BlockBoundsError(
                    f"block {block_id} was never written", block_id=block_id
                )
            self.stats.reads += 1
            self.stats.bytes_read += len(stored)
            self.stats.read_time_s += perf_counter() - start
        return stored

    def _fetch_many(self, block_ids: list[int]) -> list[bytes]:
        """Batch fetch in one seek-ordered pass under one lock hold.

        Reading the batch in ascending record offset turns the scatter
        of a readahead hint into a single forward sweep over the file;
        duplicates are read once and served to every requester.
        """
        if not block_ids:
            return []
        start = perf_counter()
        with self._lock:
            fetched: dict[int, bytes] = {}
            for block_id in sorted(set(block_ids)):
                stored = self._at_rest(block_id)
                if stored is None:
                    raise BlockBoundsError(
                        f"block {block_id} was never written", block_id=block_id
                    )
                fetched[block_id] = stored
            elapsed = perf_counter() - start
            share = elapsed / len(block_ids)
            for block_id in block_ids:
                self.stats.reads += 1
                self.stats.bytes_read += len(fetched[block_id])
                self.stats.read_time_s += share
        return [fetched[block_id] for block_id in block_ids]

    # -- durability ------------------------------------------------------

    def sync(self) -> int:
        """Flush every pending write: WAL frame, apply, header flip.

        Returns the number of block records made durable.  A sync with
        nothing pending and no allocation/epoch movement is free -- no
        frame, no flip.

        With ``group_commit`` enabled, concurrent callers coalesce: the
        first to arrive leads and flushes *everything* staged at that
        moment as one frame; callers whose staged writes are covered by
        an in-flight or completed round return without paying their own
        WAL append + fsyncs + header flip (they block until the round
        that covers them finishes).  A follower returns 0 -- its blocks
        were made durable, but by the leader's round.

        Injected "sync" faults fire here, at the entry point, *before*
        any WAL work starts -- the one place a failed sync is trivially
        retryable (a mid-protocol failure is what the crash points
        model, and those recover via ``abandon()`` + reopen, not retry).
        """
        if self.faults is not None or self.retry_policy is not None:
            return self._guarded("sync", self._sync_entry)
        return self._sync_entry()

    def _sync_entry(self) -> int:
        if not self.group_commit:
            with self._lock:
                return self._sync_locked()

        with self._lock:
            target = self._stage_seq
        waited = False
        with self._group:
            while True:
                if self._durable_seq >= target:
                    if waited:
                        with self._lock:
                            self._durability["group_joins"] += 1
                    return 0
                if not self._group_leader:
                    self._group_leader = True
                    break
                self._group.wait()
                waited = True
        ok = False
        try:
            with self._lock:
                snap = self._stage_seq
                with self.tracer.trace("wal.group_commit"):
                    flushed = self._sync_locked()
                self._durability["group_rounds"] += 1
            ok = True
        finally:
            with self._group:
                self._group_leader = False
                if ok:
                    self._durable_seq = max(self._durable_seq, snap)
                self._group.notify_all()
        return flushed

    def _sync_locked(self) -> int:
        """The serial flush protocol; caller holds ``_lock``."""
        if (
            not self._pending
            and self._count == self._durable_count
            and self._last_sealed_epoch == self._durable_epoch
        ):
            return 0
        counter = self._durable_counter + 1
        epoch = self._last_sealed_epoch
        entries = sorted(self._pending.items())
        sync_start = perf_counter()
        self._fault("sync:start")

        with self.tracer.trace("platter.wal_append"):
            parts = [
                _FRAME_BODY.pack(counter, epoch, self._count, len(entries))
            ]
            for block_id, payload in entries:
                if payload is None:
                    parts.append(_FRAME_ENTRY.pack(block_id, 0))
                else:
                    parts.append(_FRAME_ENTRY.pack(block_id, len(payload) + 1))
                    parts.append(payload)
            body = b"".join(parts)
            self._wal.seek(0, os.SEEK_END)
            frame_start = self._wal.tell()
            self._wal.write(
                _FRAME_PREFIX.pack(len(body), zlib.crc32(body)) + body
            )
            self._fsync_wal()
        self._durability["wal_frames"] += 1
        self._durability["wal_bytes"] += _FRAME_PREFIX.size + len(body)
        self._fault("wal:appended")

        # index the frame for CRC repair while we know the offsets
        pos = frame_start + _FRAME_PREFIX.size + _FRAME_BODY.size
        for block_id, payload in entries:
            pos += _FRAME_ENTRY.size
            if payload is None:
                self._repair.pop(block_id, None)
            else:
                self._repair[block_id] = (pos, len(payload))
                pos += len(payload)

        for block_id, payload in entries:
            self._write_record(block_id, payload)
            self._fault("apply:block")
        self._fsync_main()
        self._fault("apply:done")

        with self.tracer.trace("platter.header_flip"):
            self._write_header_slot(counter, epoch, self._count)
            self._fsync_main()
        self._durability["header_flips"] += 1
        self.stats.header_flips += 1
        self._fault("header:flipped")

        self._durable_counter = counter
        self._durable_epoch = epoch
        self._durable_count = self._count
        self._pending.clear()
        self._durability["syncs"] += 1

        self._wal.seek(0, os.SEEK_END)
        if self._wal.tell() > self.wal_limit_bytes:
            if self.background_checkpoint:
                self._request_background_checkpoint()
            else:
                self._checkpoint_locked()
        self.stats.write_time_s += perf_counter() - sync_start
        return len(entries)

    def _on_journal_seal(self, epoch: int, sealed_ids: frozenset[int]) -> None:
        """Sealed implies durable: an epoch closing over unsynced writes
        forces the sync, so the WAL frame carrying ``epoch`` exists
        before any consumer can be told the epoch is complete.

        The sync runs *outside* ``_lock``: under group commit it takes
        the group condition first (fixed lock order), and a concurrent
        leader that flushes between our bookkeeping and our sync just
        turns the sync into a free join.
        """
        with self._lock:
            if epoch > self._last_sealed_epoch:
                self._last_sealed_epoch = epoch
                self._stage_seq += 1
            pending = bool(self._pending)
        if pending:
            self.sync()

    def checkpoint(self) -> None:
        """Sync, then truncate the WAL (the main file subsumes it).

        Repair history is dropped with it, and other handles'
        :meth:`poll` continuity breaks (they fall back to a wholesale
        resync) -- the trade the ``wal_limit_bytes`` auto-checkpoint
        makes to bound the sidecar.
        """
        self.sync()
        with self._lock:
            self._checkpoint_locked()

    def checkpoint_now(self) -> None:
        """Synchronous checkpoint, whatever mode the platter runs in.

        The escape hatch for ``background_checkpoint=True``: callers who
        need the WAL bounded *now* (before a backup, before measuring a
        cold open) pay the compaction inline instead of waiting for the
        daemon to get around to it.
        """
        self.checkpoint()

    def _checkpoint_locked(self) -> None:
        self._wal.truncate(_WAL_DATA_OFFSET)
        self._fsync_wal()
        self._repair.clear()
        self._durability["checkpoints"] += 1

    # -- background checkpointing ----------------------------------------

    def _request_background_checkpoint(self) -> None:
        """Wake (starting if needed) the daemon checkpointer.

        Called at the tail of ``_sync_locked`` with ``_lock`` held:
        starting a thread and setting an event are both lock-free with
        respect to the platter, so the commit returns immediately and
        the compaction happens behind it.
        """
        if self._ckpt_thread is None or not self._ckpt_thread.is_alive():
            self._ckpt_stop = False
            self._ckpt_thread = threading.Thread(
                target=self._checkpoint_loop,
                name=f"platter-checkpoint-{os.path.basename(self.path)}",
                daemon=True,
            )
            self._ckpt_thread.start()
        self._ckpt_wake.set()

    def _checkpoint_loop(self) -> None:
        while True:
            self._ckpt_wake.wait()
            self._ckpt_wake.clear()
            if self._ckpt_stop or self._closed:
                return
            try:
                self.checkpoint()
                with self._lock:
                    self._durability["background_checkpoints"] += 1
            except Exception as exc:  # surfaced via checkpoint_error
                self._ckpt_error = exc

    @property
    def checkpoint_error(self) -> Exception | None:
        """The last error the background checkpointer hit, if any."""
        return self._ckpt_error

    def _stop_checkpointer(self) -> None:
        """Stop the daemon checkpointer; must be called without ``_lock``."""
        thread = self._ckpt_thread
        if thread is None:
            return
        self._ckpt_stop = True
        self._ckpt_wake.set()
        thread.join(timeout=5.0)
        self._ckpt_thread = None

    def poll(self) -> set[int] | None:
        """Catch up with commits another handle made to the same file.

        Re-reads the header; if its counter moved past ours, scans the
        WAL for the intervening frames and returns the union of their
        block ids -- exactly what a cache above must invalidate.
        Returns ``None`` when the intervening generations are no longer
        in the WAL (the writer checkpointed past us): completeness is
        unprovable, invalidate wholesale.  Only meaningful on a handle
        with no writes of its own (single-writer discipline).
        """
        with self._lock:
            if self._pending:
                raise StorageError(
                    "poll() on a handle with pending writes: polling is for "
                    "reader handles; the writer already knows what changed"
                )
            counter, epoch, count, _bs = self._read_header()
            if counter == self._durable_counter:
                return set()
            if counter < self._durable_counter:
                raise PlatterFormatError(
                    f"{self.path}: header counter moved backwards "
                    f"({self._durable_counter} to {counter})"
                )
            frames, _good_end = self._scan_wal()
            wanted = {
                c: None for c in range(self._durable_counter + 1, counter + 1)
            }
            changed: set[int] = set()
            for frame in frames:
                if frame.counter in wanted:
                    wanted[frame.counter] = frame
                    changed.update(e[0] for e in frame.entries)
            self._index_frames(frames)
            self._durable_counter = counter
            self._durable_epoch = epoch
            self._durable_count = count
            self._count = max(self._count, count)
            self._last_sealed_epoch = max(self._last_sealed_epoch, epoch)
            if any(f is None for f in wanted.values()):
                return None  # checkpointed past us; cannot prove completeness
            return changed

    def close(self) -> None:
        """Sync pending writes, then release the file handles.

        The handles are released even when the final sync fails (an
        injected permanent fault, a full disk): the sync error still
        propagates, but a second ``close()`` is a no-op either way and
        no descriptor leaks into the crash-recovery path.
        """
        with self._lock:
            if self._closed:
                return
        self._stop_checkpointer()
        try:
            # outside _lock: the group-commit sync takes the group condition
            # first; a second close racing in simply finds nothing pending
            self.sync()
        finally:
            with self._lock:
                if not self._closed:
                    self._closed = True
                    self._fh.close()
                    self._wal.close()

    def abandon(self) -> None:
        """Drop the handles with *no* sync -- the crash-test kill switch."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.close()
            self._wal.close()
        self._stop_checkpointer()

    def durability_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._durability)

    # -- whole-platter state (process-executor support) ------------------

    def export_state(self) -> list[bytes | None]:
        """Every block slot in platter order (see :class:`BlockDevice`)."""
        with self._lock:
            return [self._at_rest(block_id) for block_id in range(self._count)]

    def import_state(self, blocks: list[bytes | None]) -> None:
        for block_id, data in enumerate(blocks):
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"imported payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
        with self._lock:
            self._pending = dict(enumerate(blocks))
            self._count = len(blocks)
            self._stage_seq += 1
        self.journal.taint()

    def snapshot_blocks(self, block_ids) -> dict[int, bytes | None]:
        with self._lock:
            out: dict[int, bytes | None] = {}
            for block_id in block_ids:
                if not 0 <= block_id < self._count:
                    raise BlockBoundsError(
                        f"block {block_id} outside device of "
                        f"{self._count} blocks",
                        block_id=block_id,
                    )
                out[block_id] = self._at_rest(block_id)
            return out

    def patch_state(self, num_blocks: int, block_writes: dict[int, bytes | None]) -> None:
        for block_id, data in block_writes.items():
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"patched payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
            if block_id >= num_blocks:
                raise BlockBoundsError(
                    f"patch writes block {block_id} beyond device of "
                    f"{num_blocks} blocks",
                    block_id=block_id,
                )
        with self._lock:
            if num_blocks > self._count:
                self._count = num_blocks
            self._pending.update(block_writes)
            self._stage_seq += 1
        self.journal.note_many(block_writes)

    # -- the attacker's view ---------------------------------------------

    def raw_block(self, block_id: int) -> bytes:
        self._check_id(block_id)
        with self._lock:
            stored = self._at_rest(block_id)
        if stored is None:
            raise BlockBoundsError(
                f"block {block_id} was never written", block_id=block_id
            )
        return stored

    def raw_blocks(self) -> list[tuple[int, bytes]]:
        with self._lock:
            return [
                (block_id, data)
                for block_id in range(self._count)
                for data in (self._at_rest(block_id),)
                if data is not None
            ]
