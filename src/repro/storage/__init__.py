"""Simulated secondary storage.

The paper's schemes live at the *"low level, close to the disk-write stage
of the B-Tree node blocks and data blocks"*; the authors assume an
on-the-fly (hardware) encipherment module between main memory and the
physical disk.  This package simulates that boundary:

* :mod:`repro.storage.device` -- the :class:`BlockDevice` interface:
  read/write accounting plus an optional encipherment transform applied
  exactly at the read/write boundary (the hardware module's position);
* :mod:`repro.storage.disk` -- the in-memory device (instant, the
  paper-faithful cost model, optional simulated latency);
* :mod:`repro.storage.platter` -- the durable device: one
  self-describing file per platter with a checksummed dual-slot header,
  CRC-tagged block records and a sidecar write-ahead log replayed (and
  used for block repair) on open;
* :mod:`repro.storage.backend` -- factories binding a database's
  devices and manifest to memory or to a directory of platter files;
* :mod:`repro.storage.cache` -- the generic thread-safe LRU (pinning,
  eviction callback, mergeable hit/miss/eviction stats) every read-path
  layer builds its caching on;
* :mod:`repro.storage.pager` -- block allocation plus a two-level cache:
  *raw* (still-enciphered) blocks, so cryptographic costs stay faithful
  while disk traffic is still realistic, and an opt-in decoded-page
  level for serving paths that may skip redundant re-decryption;
* :mod:`repro.storage.journal` -- epoch-tagged change journals and the
  delta wire format behind incremental replica sync (which blocks
  changed, so a process-pool worker catches up in O(changes) instead of
  O(database));
* :mod:`repro.storage.layout` -- triplet/node sizing arithmetic used by
  the storage-overhead experiment (C2);
* :mod:`repro.storage.rwlock` -- the reader--writer lock the concurrent
  database layer (and the sharded cluster on top of it) serialises
  writers with.
"""

from repro.storage.backend import FileBackend, MemoryBackend, StorageBackend
from repro.storage.cache import CacheStats, LRUCache
from repro.storage.device import BlockDevice
from repro.storage.disk import BlockTransform, DiskStats, SimulatedDisk
from repro.storage.journal import ChangeJournal, DiskDelta, RecordStoreDelta, ShardDelta
from repro.storage.layout import NodeLayout, TripletLayout
from repro.storage.pager import Pager
from repro.storage.platter import FilePlatter
from repro.storage.rwlock import ReadWriteLock

__all__ = [
    "BlockDevice",
    "BlockTransform",
    "CacheStats",
    "ChangeJournal",
    "DiskDelta",
    "DiskStats",
    "FileBackend",
    "FilePlatter",
    "LRUCache",
    "MemoryBackend",
    "NodeLayout",
    "Pager",
    "ReadWriteLock",
    "RecordStoreDelta",
    "ShardDelta",
    "SimulatedDisk",
    "StorageBackend",
    "TripletLayout",
]
