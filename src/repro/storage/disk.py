"""A simulated block device with an encipherment hook at the I/O boundary.

Bayer and Metzger *"suggest the use of [a] hardware encryption module to
perform this 'on-the-fly' encryption and decryption"* as blocks cross the
memory/disk boundary.  :class:`SimulatedDisk` reproduces that architecture:
an optional :class:`BlockTransform` is applied to every block on write and
inverted on every read, and the device keeps complete I/O statistics so
experiments can report exact counts.

The device also exposes :meth:`raw_block`, the attacker's view: the bytes
actually resting on the platter, *without* the transform -- this feeds the
shape-reconstruction analysis (experiment C5).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.exceptions import BlockBoundsError, StorageError
from repro.storage.journal import ChangeJournal


class BlockTransform(Protocol):
    """The on-the-fly encipherment module between memory and disk."""

    def on_write(self, block_id: int, data: bytes) -> bytes:
        """Transform plain block bytes into their at-rest form."""
        ...

    def on_read(self, block_id: int, data: bytes) -> bytes:
        """Invert :meth:`on_write`."""
        ...


@dataclass
class DiskStats:
    """Counters for physical block traffic.

    ``overwrites`` counts writes landing on a block that already held
    data -- the quantity a write-back pager drives down by coalescing
    repeated rewrites of hot blocks (benchmark C7).
    """

    reads: int = 0
    writes: int = 0
    overwrites: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.overwrites = 0
        self.bytes_read = 0
        self.bytes_written = 0


@dataclass
class _PageKeyTransform:
    """Adapter turning a page-key scheme into a :class:`BlockTransform`."""

    encrypt: Callable[[int, bytes], bytes]
    decrypt: Callable[[int, bytes], bytes]

    def on_write(self, block_id: int, data: bytes) -> bytes:
        return self.encrypt(block_id, data)

    def on_read(self, block_id: int, data: bytes) -> bytes:
        return self.decrypt(block_id, data)


def transform_from_page_key_scheme(scheme) -> BlockTransform:
    """Wrap a :class:`repro.crypto.pagekey.PageKeyScheme` as a transform."""
    return _PageKeyTransform(encrypt=scheme.encrypt_page, decrypt=scheme.decrypt_page)


class SimulatedDisk:
    """A growable array of fixed-size blocks with I/O accounting.

    Parameters
    ----------
    block_size:
        Capacity of each block in bytes.  Writes longer than this raise
        :class:`BlockBoundsError` -- a real disk block cannot stretch, and
        the enciphered layouts must prove they fit.
    transform:
        Optional encipherment module applied at the I/O boundary.  When a
        transform expands data (padding), the *expanded* form must fit the
        block, exactly as it would on hardware.

    The device is thread-safe: the block array and the statistics are
    guarded by an internal mutex, so concurrent readers admitted by the
    database's reader--writer lock cannot tear either.  The transform runs
    *outside* the mutex -- cryptography is the expensive part, and a
    hardware module enciphers streams independently of platter arbitration.
    """

    def __init__(self, block_size: int = 4096, transform: BlockTransform | None = None) -> None:
        if block_size < 16:
            raise StorageError(f"block size {block_size} is unrealistically small")
        self.block_size = block_size
        self.transform = transform
        self.stats = DiskStats()
        #: Ledger of mutated block ids for incremental replica sync; a
        #: write whose at-rest bytes equal what the platter already held
        #: is *not* journaled (nothing changed, nothing to ship), which
        #: is what keeps no-op commits -- identical superblock rewrites
        #: -- invisible to the sync protocol.
        self.journal = ChangeJournal()
        self._blocks: list[bytes | None] = []
        self._lock = threading.Lock()

    # -- allocation ----------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a fresh block and return its id."""
        with self._lock:
            self._blocks.append(None)
            return len(self._blocks) - 1

    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks (including never-written ones)."""
        return len(self._blocks)

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < len(self._blocks):
            raise BlockBoundsError(
                f"block {block_id} outside device of {len(self._blocks)} blocks",
                block_id=block_id,
            )

    # -- I/O -----------------------------------------------------------------

    def write_block(self, block_id: int, data: bytes) -> None:
        """Write plain bytes; the transform runs before the platter."""
        self._check_id(block_id)
        stored = self.transform.on_write(block_id, data) if self.transform else data
        if len(stored) > self.block_size:
            raise BlockBoundsError(
                f"payload of {len(stored)} bytes overflows {self.block_size}-byte block",
                block_id=block_id,
            )
        with self._lock:
            if self._blocks[block_id] is not None:
                self.stats.overwrites += 1
            if self._blocks[block_id] != stored:
                self.journal.note(block_id)
            self._blocks[block_id] = stored
            self.stats.writes += 1
            self.stats.bytes_written += len(stored)

    def read_block(self, block_id: int) -> bytes:
        """Read a block; the transform is inverted after the platter."""
        self._check_id(block_id)
        with self._lock:
            stored = self._blocks[block_id]
            if stored is None:
                raise BlockBoundsError(
                    f"block {block_id} was never written", block_id=block_id
                )
            self.stats.reads += 1
            self.stats.bytes_read += len(stored)
        return self.transform.on_read(block_id, stored) if self.transform else stored

    # -- whole-platter state (process-executor support) ------------------

    def export_state(self) -> list[bytes | None]:
        """Every block slot -- written or not -- in platter order.

        A state *transfer*, not I/O: neither the statistics nor the
        transform are touched (the bytes are already at rest).  Feed the
        result to :meth:`import_state` on a device with the same block
        size and transform to clone the platter, e.g. into a process-pool
        worker's private copy of a shard.
        """
        with self._lock:
            return list(self._blocks)

    def import_state(self, blocks: list[bytes | None]) -> None:
        """Replace the entire platter with :meth:`export_state` output.

        Like :meth:`export_state` this is a state transfer: statistics
        are untouched, and oversized blocks are rejected exactly as a
        physical write would reject them.  The change journal is
        *tainted* -- its history described the replaced platter, so any
        consumer tracking this device needs a fresh full snapshot.
        """
        for block_id, data in enumerate(blocks):
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"imported payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
        with self._lock:
            self._blocks = list(blocks)
        self.journal.taint()

    def snapshot_blocks(self, block_ids) -> dict[int, bytes | None]:
        """At-rest bytes of the listed blocks (a targeted export).

        Like :meth:`export_state`, a state transfer: no statistics, no
        transform -- the bytes are already enciphered on the platter.
        Allocated-but-never-written blocks yield ``None``.
        """
        with self._lock:
            out: dict[int, bytes | None] = {}
            for block_id in block_ids:
                if not 0 <= block_id < len(self._blocks):
                    raise BlockBoundsError(
                        f"block {block_id} outside device of "
                        f"{len(self._blocks)} blocks",
                        block_id=block_id,
                    )
                out[block_id] = self._blocks[block_id]
            return out

    def patch_state(self, num_blocks: int, block_writes: dict[int, bytes | None]) -> None:
        """Apply a targeted delta: grow to ``num_blocks``, set the listed ids.

        The replica-side half of :meth:`snapshot_blocks`.  A state
        transfer (no statistics, no transform); the device never
        shrinks, and oversized payloads are rejected like any write.
        The patched ids are journaled -- they are genuine state changes
        should anything ever track *this* device.
        """
        for block_id, data in block_writes.items():
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"patched payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
            if block_id >= num_blocks:
                raise BlockBoundsError(
                    f"patch writes block {block_id} beyond device of "
                    f"{num_blocks} blocks",
                    block_id=block_id,
                )
        with self._lock:
            if num_blocks > len(self._blocks):
                self._blocks.extend([None] * (num_blocks - len(self._blocks)))
            for block_id, data in block_writes.items():
                self._blocks[block_id] = data
        self.journal.note_many(block_writes)

    # -- the attacker's view ---------------------------------------------

    def raw_block(self, block_id: int) -> bytes:
        """Bytes at rest, as an opponent reading the platter sees them.

        Bypasses the transform and the statistics: the attacker does not
        announce their reads.
        """
        self._check_id(block_id)
        with self._lock:
            stored = self._blocks[block_id]
        if stored is None:
            raise BlockBoundsError(f"block {block_id} was never written", block_id=block_id)
        return stored

    def raw_blocks(self) -> list[tuple[int, bytes]]:
        """Every written block, in platter order -- the full dump."""
        with self._lock:
            return [
                (block_id, data)
                for block_id, data in enumerate(self._blocks)
                if data is not None
            ]
