"""The in-memory block device with an encipherment hook at the I/O boundary.

Bayer and Metzger *"suggest the use of [a] hardware encryption module to
perform this 'on-the-fly' encryption and decryption"* as blocks cross the
memory/disk boundary.  :class:`SimulatedDisk` reproduces that architecture:
an optional :class:`~repro.storage.device.BlockTransform` is applied to
every block on write and inverted on every read, and the device keeps
complete I/O statistics so experiments can report exact counts.

Since PR 6 the device is one implementation of the
:class:`~repro.storage.device.BlockDevice` interface (the durable
:class:`~repro.storage.platter.FilePlatter` is the other); it stays the
default backend because the paper's experiments count operations, not
seconds.  For experiments that *do* want seconds to mean something, the
optional ``latency_s`` parameter charges a fixed sleep per physical block
read/write -- outside the device mutex, like the transform, so concurrent
readers overlap their waits exactly as real spindles overlap seeks.

The device also exposes :meth:`raw_block`, the attacker's view: the bytes
actually resting on the platter, *without* the transform -- this feeds the
shape-reconstruction analysis (experiment C5).

Fault-injection parity (PR 10) comes from the base class, not from this
module: :meth:`BlockDevice.attach_faults` (or a ``REPRO_FAULTS``
environment plan) arms the same injection/retry seam here as on the
durable platter, with the injection firing *before* the backend
primitive -- so a retried transient fault leaves :class:`DiskStats` and
cipher counts byte-for-byte identical to a fault-free run.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import BlockBoundsError, StorageError
from repro.storage.device import (
    BlockDevice,
    BlockTransform,
    DiskStats,
    transform_from_page_key_scheme,
)

__all__ = [
    "BlockTransform",
    "DiskStats",
    "SimulatedDisk",
    "transform_from_page_key_scheme",
]


class SimulatedDisk(BlockDevice):
    """A growable in-memory array of fixed-size blocks with I/O accounting.

    Parameters
    ----------
    block_size:
        Capacity of each block in bytes.  Writes longer than this raise
        :class:`BlockBoundsError` -- a real disk block cannot stretch, and
        the enciphered layouts must prove they fit.
    transform:
        Optional encipherment module applied at the I/O boundary.  When a
        transform expands data (padding), the *expanded* form must fit the
        block, exactly as it would on hardware.
    latency_s:
        Simulated seconds charged per physical block read or write
        (default ``0.0`` -- instant, the paper-faithful cost model).
        The sleep runs outside the device mutex, so concurrent readers
        overlap their waits; it models device service time, letting the
        executor and cache benchmarks show I/O-overlap effects without a
        real file.  Mutable at runtime (benchmarks flip it per arm).

    The device is thread-safe: the block array and the statistics are
    guarded by an internal mutex, so concurrent readers admitted by the
    database's reader--writer lock cannot tear either.  The transform runs
    *outside* the mutex -- cryptography is the expensive part, and a
    hardware module enciphers streams independently of platter arbitration.
    """

    def __init__(
        self,
        block_size: int = 4096,
        transform: BlockTransform | None = None,
        latency_s: float = 0.0,
    ) -> None:
        super().__init__(block_size, transform)
        if latency_s < 0.0:
            raise StorageError(f"negative device latency: {latency_s}")
        self.latency_s = latency_s
        self._blocks: list[bytes | None] = []
        self._lock = threading.Lock()

    # -- allocation ----------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a fresh block and return its id."""
        with self._lock:
            self._blocks.append(None)
            return len(self._blocks) - 1

    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks (including never-written ones)."""
        return len(self._blocks)

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < len(self._blocks):
            raise BlockBoundsError(
                f"block {block_id} outside device of {len(self._blocks)} blocks",
                block_id=block_id,
            )

    # -- I/O -----------------------------------------------------------------

    def _wait(self) -> float:
        """Charge the configured service time (outside the mutex).

        Returns the seconds charged, so callers can account time-in-I/O
        exactly as modeled (the sleep's wall-clock jitter is noise, not
        service time).
        """
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
            return self.latency_s
        return 0.0

    def _store(self, block_id: int, stored: bytes) -> None:
        waited = self._wait()
        with self._lock:
            if self._blocks[block_id] is not None:
                self.stats.overwrites += 1
            if self._blocks[block_id] != stored:
                self.journal.note(block_id)
            self._blocks[block_id] = stored
            self.stats.writes += 1
            self.stats.bytes_written += len(stored)
            self.stats.write_time_s += waited

    def _fetch(self, block_id: int) -> bytes:
        waited = self._wait()
        with self._lock:
            stored = self._blocks[block_id]
            if stored is None:
                raise BlockBoundsError(
                    f"block {block_id} was never written", block_id=block_id
                )
            self.stats.reads += 1
            self.stats.bytes_read += len(stored)
            self.stats.read_time_s += waited
        return stored

    # -- batched I/O (the readahead path) --------------------------------

    def _fetch_many(self, block_ids: list[int]) -> list[bytes]:
        """One service-time charge for the whole batch.

        This is the modeled payoff of readahead: a spindle (or an NVMe
        queue) serves a batched request in roughly one seek + transfer,
        not one seek per block.  Per-block counters stay identical to
        the looped form; only the time accounting shrinks -- the single
        wait is spread evenly over the batch.
        """
        if not block_ids:
            return []
        waited = self._wait()
        with self._lock:
            fetched: list[bytes] = []
            for block_id in block_ids:
                stored = self._blocks[block_id]
                if stored is None:
                    raise BlockBoundsError(
                        f"block {block_id} was never written", block_id=block_id
                    )
                fetched.append(stored)
            share = waited / len(block_ids)
            for stored in fetched:
                self.stats.reads += 1
                self.stats.bytes_read += len(stored)
                self.stats.read_time_s += share
        return fetched

    def _store_many(self, pairs: list[tuple[int, bytes]]) -> None:
        """One service-time charge for the whole batch (see _fetch_many)."""
        if not pairs:
            return
        waited = self._wait()
        with self._lock:
            share = waited / len(pairs)
            for block_id, stored in pairs:
                if self._blocks[block_id] is not None:
                    self.stats.overwrites += 1
                if self._blocks[block_id] != stored:
                    self.journal.note(block_id)
                self._blocks[block_id] = stored
                self.stats.writes += 1
                self.stats.bytes_written += len(stored)
                self.stats.write_time_s += share

    # -- whole-platter state (process-executor support) ------------------

    def export_state(self) -> list[bytes | None]:
        """Every block slot -- written or not -- in platter order.

        A state *transfer*, not I/O: neither the statistics nor the
        transform are touched (the bytes are already at rest).  Feed the
        result to :meth:`import_state` on a device with the same block
        size and transform to clone the platter, e.g. into a process-pool
        worker's private copy of a shard.
        """
        with self._lock:
            return list(self._blocks)

    def import_state(self, blocks: list[bytes | None]) -> None:
        """Replace the entire platter with :meth:`export_state` output.

        Like :meth:`export_state` this is a state transfer: statistics
        are untouched, and oversized blocks are rejected exactly as a
        physical write would reject them.  The change journal is
        *tainted* -- its history described the replaced platter, so any
        consumer tracking this device needs a fresh full snapshot.
        """
        for block_id, data in enumerate(blocks):
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"imported payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
        with self._lock:
            self._blocks = list(blocks)
        self.journal.taint()

    def snapshot_blocks(self, block_ids) -> dict[int, bytes | None]:
        """At-rest bytes of the listed blocks (a targeted export).

        Like :meth:`export_state`, a state transfer: no statistics, no
        transform -- the bytes are already enciphered on the platter.
        Allocated-but-never-written blocks yield ``None``.
        """
        with self._lock:
            out: dict[int, bytes | None] = {}
            for block_id in block_ids:
                if not 0 <= block_id < len(self._blocks):
                    raise BlockBoundsError(
                        f"block {block_id} outside device of "
                        f"{len(self._blocks)} blocks",
                        block_id=block_id,
                    )
                out[block_id] = self._blocks[block_id]
            return out

    def patch_state(self, num_blocks: int, block_writes: dict[int, bytes | None]) -> None:
        """Apply a targeted delta: grow to ``num_blocks``, set the listed ids.

        The replica-side half of :meth:`snapshot_blocks`.  A state
        transfer (no statistics, no transform); the device never
        shrinks, and oversized payloads are rejected like any write.
        The patched ids are journaled -- they are genuine state changes
        should anything ever track *this* device.
        """
        for block_id, data in block_writes.items():
            if data is not None and len(data) > self.block_size:
                raise BlockBoundsError(
                    f"patched payload of {len(data)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
            if block_id >= num_blocks:
                raise BlockBoundsError(
                    f"patch writes block {block_id} beyond device of "
                    f"{num_blocks} blocks",
                    block_id=block_id,
                )
        with self._lock:
            if num_blocks > len(self._blocks):
                self._blocks.extend([None] * (num_blocks - len(self._blocks)))
            for block_id, data in block_writes.items():
                self._blocks[block_id] = data
        self.journal.note_many(block_writes)

    # -- the attacker's view ---------------------------------------------

    def raw_block(self, block_id: int) -> bytes:
        """Bytes at rest, as an opponent reading the platter sees them.

        Bypasses the transform and the statistics: the attacker does not
        announce their reads.
        """
        self._check_id(block_id)
        with self._lock:
            stored = self._blocks[block_id]
        if stored is None:
            raise BlockBoundsError(f"block {block_id} was never written", block_id=block_id)
        return stored

    def raw_blocks(self) -> list[tuple[int, bytes]]:
        """Every written block, in platter order -- the full dump."""
        with self._lock:
            return [
                (block_id, data)
                for block_id, data in enumerate(self._blocks)
                if data is not None
            ]
