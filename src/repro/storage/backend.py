"""Storage backends: where a database's block devices come from.

A database owns two block devices (node blocks, record blocks) and a
cluster owns two per shard.  Before PR 6 every layer constructed
:class:`~repro.storage.disk.SimulatedDisk` directly; a
:class:`StorageBackend` abstracts that choice into a factory the
create/reopen paths thread through, so the same code runs on the
instant in-memory device or on durable :class:`~repro.storage.platter.
FilePlatter` files:

* :class:`MemoryBackend` -- devices are :class:`SimulatedDisk`\\ s held
  in a registry (so a same-process "reopen" finds them again) and the
  manifest is a held byte string.  Supports the optional per-operation
  latency knob for I/O-wait modelling.
* :class:`FileBackend` -- a directory; each device is a
  ``<name>.platter`` file (plus its ``.wal`` sidecar), the manifest is
  an atomically-replaced ``MANIFEST`` file, and :meth:`scoped` returns
  a subdirectory backend (the cluster gives each shard its own scope).

Device *names* are the self-description hook: a manifest records names
("node", "records") rather than paths, and a backend rooted anywhere
can resolve them -- moving a database is moving a directory.
"""

from __future__ import annotations

import os
import re
import tempfile
from abc import ABC, abstractmethod

from repro.exceptions import StorageError
from repro.storage.device import BlockDevice, BlockTransform
from repro.storage.disk import SimulatedDisk
from repro.storage.platter import FilePlatter

__all__ = ["StorageBackend", "MemoryBackend", "FileBackend"]

#: Device and scope names double as file-name stems; keep them tame.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(f"invalid device/scope name: {name!r}")
    return name


class StorageBackend(ABC):
    """Factory for the block devices (and the manifest) of one database.

    ``durable`` says whether devices opened here survive the process --
    callers use it to decide whether a sync/commit has real value (the
    C12 benchmark prints it next to every arm).
    """

    durable: bool = False

    @abstractmethod
    def open_device(
        self,
        name: str,
        *,
        block_size: int = 4096,
        transform: BlockTransform | None = None,
        create: bool | None = None,
    ) -> BlockDevice:
        """Open (or create) the named block device.

        ``create`` follows :class:`~repro.storage.platter.FilePlatter`:
        ``True`` demands a fresh device, ``False`` demands an existing
        one, ``None`` takes whichever applies.
        """

    @abstractmethod
    def scoped(self, name: str) -> "StorageBackend":
        """A child backend namespacing its devices under ``name``.

        Stable: asking twice for the same name yields the same storage
        (the cluster reopens shard ``i`` from ``scoped(f"shard-{i:03d}")``).
        """

    @abstractmethod
    def save_manifest(self, payload: bytes) -> None:
        """Durably store the (already enciphered) manifest blob."""

    @abstractmethod
    def load_manifest(self) -> bytes:
        """The stored manifest blob; :class:`StorageError` if none."""

    # -- auxiliary blobs (advisory data riding beside the devices) -------

    def save_blob(self, name: str, payload: bytes) -> None:
        """Store a named auxiliary blob (e.g. the persisted heat map).

        Blobs are *advisory* -- losing one never loses data -- so the
        base class declines rather than forcing every backend to care.
        """
        raise StorageError(f"{type(self).__name__} does not store auxiliary blobs")

    def load_blob(self, name: str) -> bytes | None:
        """The named blob, or ``None`` when absent (or unsupported)."""
        return None


class MemoryBackend(StorageBackend):
    """In-memory devices with a registry, so reopen-by-name works.

    ``latency_s`` is handed to every :class:`SimulatedDisk` opened here
    -- the backend-level home of the I/O-wait model, so a benchmark can
    run the same create path against "instant memory" and "memory that
    pretends to seek".
    """

    durable = False

    def __init__(self, latency_s: float = 0.0) -> None:
        self.latency_s = latency_s
        self._devices: dict[str, SimulatedDisk] = {}
        self._scopes: dict[str, MemoryBackend] = {}
        self._manifest: bytes | None = None
        self._blobs: dict[str, bytes] = {}

    def open_device(
        self,
        name: str,
        *,
        block_size: int = 4096,
        transform: BlockTransform | None = None,
        create: bool | None = None,
    ) -> BlockDevice:
        _check_name(name)
        existing = self._devices.get(name)
        if create is True and existing is not None:
            raise StorageError(f"device already exists: {name}")
        if create is False and existing is None:
            raise StorageError(f"device not found: {name}")
        if existing is not None:
            if existing.block_size != block_size:
                raise StorageError(
                    f"device {name} holds {existing.block_size}-byte blocks, "
                    f"not {block_size}"
                )
            if transform is not None:
                # a reopen brings its own (key-identical) transform; adopt
                # it so cipher counters land on the new handle's meters
                existing.transform = transform
            return existing
        device = SimulatedDisk(
            block_size=block_size, transform=transform, latency_s=self.latency_s
        )
        self._devices[name] = device
        return device

    def scoped(self, name: str) -> "MemoryBackend":
        _check_name(name)
        child = self._scopes.get(name)
        if child is None:
            child = MemoryBackend(latency_s=self.latency_s)
            self._scopes[name] = child
        return child

    def save_manifest(self, payload: bytes) -> None:
        self._manifest = bytes(payload)

    def load_manifest(self) -> bytes:
        if self._manifest is None:
            raise StorageError("no manifest stored in this backend")
        return self._manifest

    def save_blob(self, name: str, payload: bytes) -> None:
        self._blobs[_check_name(name)] = bytes(payload)

    def load_blob(self, name: str) -> bytes | None:
        return self._blobs.get(_check_name(name))


class FileBackend(StorageBackend):
    """A directory of :class:`FilePlatter` files plus a manifest file.

    Layout under ``root``::

        MANIFEST                  enciphered cluster/database manifest
        <name>.platter            one per device
        <name>.platter.wal        its write-ahead log
        <scope>/...               scoped child backends (per shard)

    ``fsync=False``, ``wal_limit_bytes``, ``group_commit``,
    ``fsync_latency_s`` and ``background_checkpoint`` pass straight
    through to every platter opened here (group commit coalesces concurrent syncs into shared WAL
    rounds; the latency knob charges a modeled seconds-per-fsync so
    benchmarks see realistic durability costs on fast filesystems).
    """

    durable = True

    def __init__(
        self,
        root,
        *,
        fsync: bool = True,
        wal_limit_bytes: int = 16 * 1024 * 1024,
        group_commit: bool = False,
        fsync_latency_s: float = 0.0,
        background_checkpoint: bool = False,
    ) -> None:
        self.root = os.fspath(root)
        self.fsync = fsync
        self.wal_limit_bytes = wal_limit_bytes
        self.group_commit = group_commit
        self.fsync_latency_s = fsync_latency_s
        self.background_checkpoint = background_checkpoint
        os.makedirs(self.root, exist_ok=True)

    def device_path(self, name: str) -> str:
        return os.path.join(self.root, _check_name(name) + ".platter")

    def open_device(
        self,
        name: str,
        *,
        block_size: int = 4096,
        transform: BlockTransform | None = None,
        create: bool | None = None,
    ) -> BlockDevice:
        return FilePlatter(
            self.device_path(name),
            block_size=block_size,
            transform=transform,
            create=create,
            fsync=self.fsync,
            wal_limit_bytes=self.wal_limit_bytes,
            group_commit=self.group_commit,
            fsync_latency_s=self.fsync_latency_s,
            background_checkpoint=self.background_checkpoint,
        )

    def scoped(self, name: str) -> "FileBackend":
        return FileBackend(
            os.path.join(self.root, _check_name(name)),
            fsync=self.fsync,
            wal_limit_bytes=self.wal_limit_bytes,
            group_commit=self.group_commit,
            fsync_latency_s=self.fsync_latency_s,
            background_checkpoint=self.background_checkpoint,
        )

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "MANIFEST")

    def save_manifest(self, payload: bytes) -> None:
        """Atomic replace: the manifest is either the old one or the new
        one, never a torn mixture -- same discipline as the header flip."""
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".MANIFEST.")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.manifest_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load_manifest(self) -> bytes:
        try:
            with open(self.manifest_path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise StorageError(f"no manifest at {self.manifest_path}") from None

    def blob_path(self, name: str) -> str:
        return os.path.join(self.root, _check_name(name) + ".blob")

    def save_blob(self, name: str, payload: bytes) -> None:
        """Atomic replace, same discipline as :meth:`save_manifest`."""
        path = self.blob_path(name)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f".{name}.blob.")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load_blob(self, name: str) -> bytes | None:
        try:
            with open(self.blob_path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None
