"""A reentrant reader--writer lock for the concurrent database layer.

The paper's structures are single-threaded; serving them to many clients
needs the classical discipline: any number of readers may traverse the
index together, while a writer (insert, delete, commit, a whole
transaction scope) holds the structure exclusively.

Semantics
---------

* **Writer preference.**  Once a writer is waiting, *new* reader threads
  queue behind it; readers already inside may finish (and may re-enter --
  see below), so writers cannot starve behind a stream of fresh readers.
* **Reentrancy.**  A thread may nest read sections inside read sections
  and write sections inside write sections.  A thread holding the write
  lock may also enter read sections (a writer is trivially a reader) --
  :class:`~repro.core.database.EncipheredDatabase` relies on this, since
  ``insert`` (write-locked) ends in ``commit`` (write-locked) and a
  transaction scope calls read-locked queries.
* **No upgrades.**  Acquiring the write lock while holding only the read
  lock raises :class:`~repro.exceptions.StorageError`: two readers
  upgrading simultaneously would deadlock, so the attempt is rejected
  outright.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import StorageError


class ReadWriteLock:
    """Reentrant many-readers / one-writer lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._read_depth: dict[int, int] = {}  # reader thread id -> nesting
        self._writer: int | None = None  # owning thread id, if any
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # the writer is trivially a reader; count it as nesting
                self._writer_depth += 1
                return
            depth = self._read_depth.get(me, 0)
            if depth == 0:
                # a thread already reading may re-enter even while a
                # writer waits (blocking it would deadlock); fresh
                # readers queue behind waiting writers
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
            self._read_depth[me] = depth + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            depth = self._read_depth.get(me, 0)
            if depth == 0:
                raise StorageError("release_read without a matching acquire_read")
            if depth > 1:
                self._read_depth[me] = depth - 1
            else:
                del self._read_depth[me]
                self._cond.notify_all()

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._read_depth.get(me, 0):
                raise StorageError(
                    "cannot upgrade a read lock to a write lock "
                    "(two upgrading readers would deadlock)"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._read_depth:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise StorageError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Scope held under the shared (reader) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Scope held under the exclusive (writer) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests and diagnostics) ---------------------------

    @property
    def active_readers(self) -> int:
        """Number of distinct threads currently holding the read side."""
        with self._cond:
            return len(self._read_depth)

    @property
    def write_held(self) -> bool:
        """True iff some thread currently holds the write side."""
        with self._cond:
            return self._writer is not None

    def held_by_current_thread(self) -> bool:
        """True iff the calling thread holds either side."""
        me = threading.get_ident()
        with self._cond:
            return self._writer == me or bool(self._read_depth.get(me, 0))
