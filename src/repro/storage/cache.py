"""A generic thread-safe LRU cache: the read path's one caching primitive.

Every layer of the read path keeps *some* recently-produced value around
-- the pager holds raw block bytes, the record store holds deciphered
slot tuples, the node path can hold decoded views -- and before this
module each layer grew its own ad-hoc ``OrderedDict`` with its own
locking and its own half of the statistics.  :class:`LRUCache` unifies
them: one eviction policy, one stats shape (so the cluster layer can sum
cache counters leaf-wise like every other counter dict), and two hooks
the storage layers need:

* **eviction protection** -- per-key pins (a pinned entry is never
  chosen for eviction; the cache may temporarily exceed its capacity)
  and a ``may_evict`` predicate consulted at eviction time.  The
  write-back pager uses the predicate to exempt dirty pages while
  ``retain_dirty`` is raised, so a transaction's uncommitted pages stay
  discardable for rollback.
* **eviction callback** -- invoked for entries *evicted by capacity
  pressure* (not for explicit :meth:`invalidate`/:meth:`clear`), which
  is where the pager's evict-writes-dirty policy lives.

Security note: a cache above an encipherment boundary holds *plaintext*,
and holds it only in memory.  Nothing here changes what reaches a disk
-- ciphertext traffic is byte-identical with the cache on or off; only
the number of decryptions performed to serve reads changes.  That
invariant is what benchmark C9 asserts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`LRUCache`.

    All fields are plain numbers so a snapshot can be merged leaf-wise
    by :func:`repro.cluster.stats.merge_counter_dicts`.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict[str, int]:
        """The counters as a mergeable plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


#: Sentinel distinguishing "absent" from a cached ``None``.
_ABSENT = object()


class LRUCache:
    """Thread-safe LRU mapping with pinning and an eviction callback.

    Parameters
    ----------
    capacity:
        Budget in entries (for the storage layers: blocks).  ``0``
        disables the cache: every :meth:`get` misses, and a :meth:`put`
        of an unpinned entry stores it only to evict it immediately
        (firing ``on_evict``) -- which is exactly how a write-back pager
        with no cache degenerates to write-through.  Read paths should
        guard their fill with :attr:`enabled` to skip that churn.
    on_evict:
        Called as ``on_evict(key, value)`` for each entry evicted by
        capacity pressure, *outside* LRU bookkeeping but under the cache
        lock (keep it brief).  Not called by :meth:`invalidate` or
        :meth:`clear` -- explicit removal means the caller already knows.
    may_evict:
        Optional predicate consulted *at eviction time*: entries for
        which it returns ``False`` are skipped like pinned ones.  Unlike
        a pin -- set once, on one key -- the predicate sees the caller's
        *current* state, so a policy toggle (the pager's
        ``retain_dirty``) protects entries that were inserted before the
        toggle.  Callers whose predicate can flip back to permissive
        should :meth:`enforce_capacity` afterwards.
    name:
        Label for diagnostics and ``repr``.
    weigher:
        Optional ``weigher(key, value) -> int`` giving an entry's weight
        in bytes; consulted at :meth:`put` time unless the caller passes
        an explicit ``weight``.  Without either, entries weigh 0.
    max_bytes:
        Byte budget over the summed entry weights; ``0`` (default) means
        unweighted -- only the entry-count bound applies.  When
        ``max_bytes > 0`` the cache is enabled even with ``capacity=0``
        (byte-bounded only): capacity planning by memory footprint
        instead of entry count, which is what the decoded-node cache
        needs -- node views vary widely in size.
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Callable[[Hashable, object], None] | None = None,
        may_evict: Callable[[Hashable], bool] | None = None,
        name: str = "lru",
        weigher: Callable[[Hashable, object], int] | None = None,
        max_bytes: int = 0,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if max_bytes < 0:
            raise ValueError(f"cache byte budget must be >= 0, got {max_bytes}")
        self.name = name
        self.stats = CacheStats()
        self._capacity = capacity
        self._max_bytes = max_bytes
        self._weigher = weigher
        self._on_evict = on_evict
        self._may_evict = may_evict
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._weights: dict[Hashable, int] = {}
        self._total_bytes = 0
        self._pinned: set[Hashable] = set()
        # Reentrant: an on_evict callback may invalidate() other keys.
        self._lock = threading.RLock()

    # -- configuration ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def max_bytes(self) -> int:
        """Byte budget over entry weights (0 = unweighted)."""
        return self._max_bytes

    @property
    def total_bytes(self) -> int:
        """Summed weight of the cached entries (a gauge, not a counter)."""
        with self._lock:
            return self._total_bytes

    @property
    def enabled(self) -> bool:
        return self._capacity > 0 or self._max_bytes > 0

    def resize(self, capacity: int) -> None:
        """Change the entry budget; shrinking evicts LRU-first."""
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        with self._lock:
            self._capacity = capacity
            self._evict_over_capacity()

    def resize_bytes(self, max_bytes: int) -> None:
        """Change the byte budget; shrinking evicts LRU-first."""
        if max_bytes < 0:
            raise ValueError(f"cache byte budget must be >= 0, got {max_bytes}")
        with self._lock:
            self._max_bytes = max_bytes
            self._evict_over_capacity()

    # -- lookup / insertion ----------------------------------------------

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (now most-recently-used) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable, default: object = None) -> object:
        """Like :meth:`get` but touches neither LRU order nor statistics."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            return default if value is _ABSENT else value

    def put(self, key: Hashable, value: object, weight: int | None = None) -> None:
        """Insert or refresh an entry, then re-apply both capacity bounds.

        ``weight`` is the entry's size in bytes; when omitted, the
        constructor's ``weigher`` is consulted (0 without one).  Callers
        that already know the byte size (the pager knows its block
        length) pass it explicitly and skip the weigher.
        """
        with self._lock:
            if weight is None:
                weight = self._weigher(key, value) if self._weigher else 0
            self._total_bytes += weight - self._weights.get(key, 0)
            self._weights[key] = weight
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            self._evict_over_capacity()

    # -- pinning ---------------------------------------------------------

    def pin(self, key: Hashable) -> None:
        """Exempt ``key`` from eviction until :meth:`unpin`.

        Pinning is advisory on absent keys: the pin applies if and when
        the key is cached.
        """
        with self._lock:
            self._pinned.add(key)

    def unpin(self, key: Hashable) -> None:
        """Make ``key`` ordinarily evictable again."""
        with self._lock:
            self._pinned.discard(key)
            self._evict_over_capacity()

    def unpin_all(self) -> None:
        """Drop every pin and re-apply the capacity bound."""
        with self._lock:
            self._pinned.clear()
            self._evict_over_capacity()

    def enforce_capacity(self) -> None:
        """Re-apply the capacity bound (after a ``may_evict`` state change)."""
        with self._lock:
            self._evict_over_capacity()

    @property
    def pinned_count(self) -> int:
        with self._lock:
            return len(self._pinned)

    # -- removal ---------------------------------------------------------

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` (pinned or not); returns whether it was cached.

        The eviction callback is *not* invoked -- invalidation is the
        caller declaring the entry dead, not the cache shedding load.
        """
        with self._lock:
            self._pinned.discard(key)
            if self._entries.pop(key, _ABSENT) is _ABSENT:
                return False
            self._total_bytes -= self._weights.pop(key, 0)
            self.stats.invalidations += 1
            return True

    def clear(self) -> int:
        """Drop everything (pins included); returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self.stats.invalidations += dropped
            self._entries.clear()
            self._weights.clear()
            self._total_bytes = 0
            self._pinned.clear()
            return dropped

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """The cached keys, LRU-first (eviction order)."""
        with self._lock:
            return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<LRUCache {self.name!r} {len(self)}/{self._capacity} entries, "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )

    # -- internals -------------------------------------------------------

    def _over_budget(self) -> bool:
        # The entry-count bound applies unless the cache is byte-bounded
        # only (capacity 0 with a byte budget); the byte bound applies
        # whenever one is set.  With neither (capacity 0, max_bytes 0)
        # the cache is disabled and every entry is over budget -- the
        # degenerate behaviour write-back pagers rely on.
        if self._max_bytes and self._total_bytes > self._max_bytes:
            return True
        if self._capacity or not self._max_bytes:
            return len(self._entries) > self._capacity
        return False

    def _evict_over_capacity(self) -> None:
        # callers hold self._lock
        while self._over_budget():
            victim = next(
                (
                    k
                    for k in self._entries
                    if k not in self._pinned
                    and (self._may_evict is None or self._may_evict(k))
                ),
                _ABSENT,
            )
            if victim is _ABSENT:
                return  # everything is protected; bound restored later
            value = self._entries.pop(victim)
            self._total_bytes -= self._weights.pop(victim, 0)
            self.stats.evictions += 1
            if self._on_evict is not None:
                self._on_evict(victim, value)
