"""The block-device interface every storage bottom implements.

Until PR 6 the storage bottom *was* :class:`~repro.storage.disk.
SimulatedDisk` -- an instant, in-memory dict -- and every layer above it
(pager, record store, database, cluster, replica sync) was written
against that one concrete class.  This module extracts the contract
those layers actually rely on into :class:`BlockDevice`, so the bottom
becomes pluggable:

* :class:`~repro.storage.disk.SimulatedDisk` -- the in-memory backend,
  now with an optional per-operation latency so executor and cache
  benchmarks can model I/O wait without a real file;
* :class:`~repro.storage.platter.FilePlatter` -- a single real file with
  a checksummed self-describing header, CRC-tagged block records and a
  write-ahead log, giving the enciphered-database-at-rest story an
  actual at-rest form and a crash-recovery path.

The template methods here pin down the one architectural invariant both
backends share: the optional :class:`BlockTransform` -- the paper's
on-the-fly hardware encipherment module -- runs exactly at the
read/write boundary, *outside* any device lock (cryptography is the
expensive part and enciphers streams independently of platter
arbitration).  Backends implement the at-rest primitives
(:meth:`BlockDevice._store` / :meth:`BlockDevice._fetch`) plus the
state-transfer surface the replica-sync protocol ships bytes through.

Durability is part of the interface but optional in the implementation:
:meth:`BlockDevice.sync` is the commit-time barrier ("pending writes
are now at rest"), a no-op for the in-memory device and a WAL-append +
apply + header-flip for the file platter; :meth:`BlockDevice.poll` is
the cross-process catch-up probe behind journal-driven cache
invalidation (see :meth:`repro.core.database.EncipheredDatabase.
reattach`); :meth:`BlockDevice.durability_snapshot` reports the same
counter shape for every backend so cluster statistics merge leaf-wise.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.exceptions import (
    BlockBoundsError,
    PermanentIOError,
    StorageError,
    TransientIOError,
)
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    plan_from_env,
    zero_fault_counters,
)
from repro.obs.tracing import NULL_TRACER
from repro.storage.journal import ChangeJournal


class BlockTransform(Protocol):
    """The on-the-fly encipherment module between memory and disk."""

    def on_write(self, block_id: int, data: bytes) -> bytes:
        """Transform plain block bytes into their at-rest form."""
        ...

    def on_read(self, block_id: int, data: bytes) -> bytes:
        """Invert :meth:`on_write`."""
        ...


@dataclass
class DiskStats:
    """Counters for physical block traffic.

    ``overwrites`` counts writes landing on a block that already held
    data -- the quantity a write-back pager drives down by coalescing
    repeated rewrites of hot blocks (benchmark C7).

    ``read_time_s``/``write_time_s`` accumulate time the device spent in
    physical I/O (the modeled service time for :class:`~repro.storage.
    disk.SimulatedDisk`, measured wall time for :class:`~repro.storage.
    platter.FilePlatter`); ``fsyncs`` and ``header_flips`` count the
    durable device's barrier operations.  Together they are the signal
    an async pager needs to decide what is worth overlapping (ROADMAP
    item 1 follow-on); the instant in-memory device reports zeros.
    """

    reads: int = 0
    writes: int = 0
    overwrites: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    fsyncs: int = 0
    header_flips: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.overwrites = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_time_s = 0.0
        self.write_time_s = 0.0
        self.fsyncs = 0
        self.header_flips = 0


@dataclass
class _PageKeyTransform:
    """Adapter turning a page-key scheme into a :class:`BlockTransform`."""

    encrypt: Callable[[int, bytes], bytes]
    decrypt: Callable[[int, bytes], bytes]

    def on_write(self, block_id: int, data: bytes) -> bytes:
        return self.encrypt(block_id, data)

    def on_read(self, block_id: int, data: bytes) -> bytes:
        return self.decrypt(block_id, data)


def transform_from_page_key_scheme(scheme) -> BlockTransform:
    """Wrap a :class:`repro.crypto.pagekey.PageKeyScheme` as a transform."""
    return _PageKeyTransform(encrypt=scheme.encrypt_page, decrypt=scheme.decrypt_page)


#: The one durability-counter shape every backend reports, so the
#: cluster's leaf-wise counter merge works whatever mix of backends the
#: shards run on.  The in-memory device reports all zeros.
DURABILITY_FIELDS = (
    "syncs",
    "wal_frames",
    "wal_bytes",
    "header_flips",
    "frames_replayed",
    "blocks_repaired",
    "checkpoints",
    # group commit (PR 9): rounds a leader flushed on behalf of a batch,
    # and follower syncs satisfied by another thread's round without
    # paying their own WAL append + fsyncs + header flip
    "group_rounds",
    "group_joins",
    # background checkpointing (PR 10): WAL compactions run off the
    # commit path by the platter's daemon checkpointer
    "background_checkpoints",
)


class BlockDevice(ABC):
    """A growable array of fixed-size blocks with I/O accounting.

    Subclasses supply the at-rest storage (:meth:`_store`/:meth:`_fetch`
    plus the allocation and state-transfer surface); this base class
    owns the transform boundary, the shared statistics object and the
    change journal that the incremental replica-sync protocol reads.

    The transform runs outside whatever lock the backend takes for its
    at-rest bookkeeping, so concurrent readers admitted by the
    database's reader--writer lock decipher in parallel.
    """

    def __init__(self, block_size: int, transform: BlockTransform | None) -> None:
        if block_size < 16:
            raise StorageError(f"block size {block_size} is unrealistically small")
        self.block_size = block_size
        self.transform = transform
        self.stats = DiskStats()
        #: Span tracer for durable-path instrumentation (WAL append,
        #: fsync, header flip).  Defaults to the shared disabled tracer;
        #: the owning database replaces it with its own.
        self.tracer = NULL_TRACER
        #: Ledger of mutated block ids for incremental replica sync; a
        #: write whose at-rest bytes equal what the platter already held
        #: is *not* journaled (nothing changed, nothing to ship), which
        #: is what keeps no-op commits -- identical superblock rewrites
        #: -- invisible to the sync protocol.
        self.journal = ChangeJournal(on_seal=self._on_journal_seal)
        #: Fault-injection + retry seam (the chaos plane).  Unset by
        #: default; :func:`repro.faults.plan_from_env` arms every device
        #: constructed while ``REPRO_FAULTS`` is set.
        self.faults: FaultInjector | None = None
        self.retry_policy: RetryPolicy | None = None
        self.retry_counters = {"retries": 0, "retries_exhausted": 0}
        self._fault_rng = random.Random(0)
        plan = plan_from_env()
        if plan is not None:
            self.attach_faults(plan.injector(label=type(self).__name__), plan.retry)

    # -- fault injection + retries (the chaos seam) ----------------------

    def attach_faults(
        self,
        injector: FaultInjector | None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        """Arm (or disarm, with ``None``) fault injection on this device.

        Attaching replaces any previous injector -- including one armed
        from the environment -- and resets the retry counters, so a test
        that attaches its own schedule observes only its own faults.
        When an injector is supplied without a policy the default
        :class:`~repro.faults.RetryPolicy` is used; pass an explicit
        policy of ``None`` only by disarming entirely.
        """
        self.faults = injector
        if injector is None:
            self.retry_policy = retry_policy
        else:
            self.retry_policy = retry_policy or RetryPolicy()
        self.retry_counters = {"retries": 0, "retries_exhausted": 0}
        seed = getattr(injector, "seed", 0) if injector is not None else 0
        self._fault_rng = random.Random(seed ^ 0x5EED)

    def fault_snapshot(self) -> dict[str, int]:
        """Injected-fault + retry counters in one fixed, mergeable shape."""
        snap = zero_fault_counters()
        if self.faults is not None:
            snap.update(self.faults.snapshot())
        snap["retries"] = self.retry_counters["retries"]
        snap["retries_exhausted"] = self.retry_counters["retries_exhausted"]
        return snap

    def _inject(self, op: str, block_id: int | None, stored: bytes | None) -> None:
        """Consult the injector for one at-rest op; raise/sleep on its cue.

        Runs *before* the backend primitive, so an injected failure that
        is later retried leaves :class:`DiskStats` exactly as a
        fault-free run would -- only torn writes land (corrupt) bytes.
        """
        action = self.faults.fire(op)
        if action is None:
            return
        where = f" on block {block_id}" if block_id is not None else ""
        if action.kind == "latency":
            time.sleep(action.delay_s)
            return
        if action.kind == "torn" and stored is not None and block_id is not None:
            # the classic torn write: corrupt bytes reach the platter AND
            # the caller sees an error -- a retry must heal byte-exactly
            self._store(block_id, self.faults.tear(stored))
            raise TransientIOError(f"injected torn write{where}")
        if action.kind in ("transient", "torn"):
            raise TransientIOError(f"injected transient {op} error{where}")
        raise PermanentIOError(f"injected permanent {op} failure{where}")

    def _guarded(self, op: str, fn, block_id: int | None = None,
                 stored: bytes | None = None):
        """Run an at-rest primitive under injection and the retry policy.

        The transform never sits inside this loop: callers transform
        once, then retry only the at-rest part, keeping cipher-operation
        counts identical whether or not faults fire.
        """
        faults = self.faults
        policy = self.retry_policy
        if faults is None and policy is None:
            return fn()

        def attempt():
            if faults is not None:
                self._inject(op, block_id, stored)
            return fn()

        if policy is None:
            return attempt()

        def on_retry(_attempt_no, _exc):
            self.retry_counters["retries"] += 1
            with self.tracer.trace("device.fault_retry"):
                pass  # count the retry in the span stream, duration ~0

        try:
            return policy.call(attempt, rng=self._fault_rng, on_retry=on_retry)
        except Exception as exc:
            if RetryPolicy.is_transient(exc):
                self.retry_counters["retries_exhausted"] += 1
            raise

    def _guarded_batch(self, attempt):
        """Retry an already-prepared batch attempt (injection included)."""
        policy = self.retry_policy
        if policy is None:
            return attempt()

        def on_retry(_attempt_no, _exc):
            self.retry_counters["retries"] += 1
            with self.tracer.trace("device.fault_retry"):
                pass  # count the retry in the span stream, duration ~0

        try:
            return policy.call(attempt, rng=self._fault_rng, on_retry=on_retry)
        except Exception as exc:
            if RetryPolicy.is_transient(exc):
                self.retry_counters["retries_exhausted"] += 1
            raise

    # -- allocation ------------------------------------------------------

    @abstractmethod
    def allocate(self) -> int:
        """Reserve a fresh block and return its id."""

    @property
    @abstractmethod
    def num_blocks(self) -> int:
        """Number of allocated blocks (including never-written ones)."""

    @abstractmethod
    def _check_id(self, block_id: int) -> None:
        """Raise :class:`BlockBoundsError` for an out-of-range id."""

    # -- I/O (template: transform at the boundary, at-rest below) --------

    def write_block(self, block_id: int, data: bytes) -> None:
        """Write plain bytes; the transform runs before the platter."""
        self._check_id(block_id)
        stored = self.transform.on_write(block_id, data) if self.transform else data
        if len(stored) > self.block_size:
            raise BlockBoundsError(
                f"payload of {len(stored)} bytes overflows {self.block_size}-byte block",
                block_id=block_id,
            )
        if self.faults is None and self.retry_policy is None:
            self._store(block_id, stored)
        else:
            self._guarded(
                "write", lambda: self._store(block_id, stored),
                block_id=block_id, stored=stored,
            )

    def read_block(self, block_id: int) -> bytes:
        """Read a block; the transform is inverted after the platter."""
        self._check_id(block_id)
        if self.faults is None and self.retry_policy is None:
            stored = self._fetch(block_id)
        else:
            stored = self._guarded(
                "read", lambda: self._fetch(block_id), block_id=block_id
            )
        return self.transform.on_read(block_id, stored) if self.transform else stored

    def read_many(self, block_ids) -> list[bytes]:
        """Read several blocks in one device round trip.

        The bulk entry point behind readahead and batched cache warming:
        one call charges the device's fixed per-operation costs once for
        the whole batch (:class:`~repro.storage.disk.SimulatedDisk`
        sleeps its ``latency_s`` once; :class:`~repro.storage.platter.
        FilePlatter` does a single seek-ordered pass), while the
        transform still runs per block *outside* any device lock, so a
        readahead worker deciphers an entire batch without stalling
        foreground I/O.  Semantics are exactly ``[read_block(b) for b in
        block_ids]`` -- same bounds checks, same per-block statistics,
        same exceptions.
        """
        ids = list(block_ids)
        for block_id in ids:
            self._check_id(block_id)
        if self.faults is None and self.retry_policy is None:
            stored = self._fetch_many(ids)
        else:
            # the injector sees one "read" op per block (matching the
            # looped form); the whole batch retries as a unit
            def attempt_batch():
                if self.faults is not None:
                    for block_id in ids:
                        self._inject("read", block_id, None)
                return self._fetch_many(ids)

            stored = self._guarded_batch(attempt_batch)
        if self.transform is None:
            return stored
        return [self.transform.on_read(b, s) for b, s in zip(ids, stored)]

    def write_many(self, items) -> None:
        """Write several ``(block_id, data)`` pairs in one round trip.

        The mirror of :meth:`read_many`: transforms run per block before
        the batch lands, and the backend's :meth:`_store_many` charges
        fixed costs once.  Equivalent to ``write_block`` in a loop.
        """
        pairs = []
        for block_id, data in items:
            self._check_id(block_id)
            stored = self.transform.on_write(block_id, data) if self.transform else data
            if len(stored) > self.block_size:
                raise BlockBoundsError(
                    f"payload of {len(stored)} bytes overflows "
                    f"{self.block_size}-byte block",
                    block_id=block_id,
                )
            pairs.append((block_id, stored))
        if self.faults is None and self.retry_policy is None:
            self._store_many(pairs)
            return

        def attempt_batch():
            if self.faults is not None:
                for pair_id, pair_stored in pairs:
                    self._inject("write", pair_id, pair_stored)
            self._store_many(pairs)

        self._guarded_batch(attempt_batch)

    @abstractmethod
    def _store(self, block_id: int, stored: bytes) -> None:
        """Land at-rest bytes: statistics, journal dedup, persistence."""

    @abstractmethod
    def _fetch(self, block_id: int) -> bytes:
        """Return at-rest bytes (raising for a never-written block)."""

    def _fetch_many(self, block_ids: list[int]) -> list[bytes]:
        """Batch at-rest fetch seam; the default simply loops.

        Backends override to amortise fixed per-operation costs over the
        batch.  Overrides must keep per-block statistics identical to
        the looped form (only the *time* accounting may differ).
        """
        return [self._fetch(block_id) for block_id in block_ids]

    def _store_many(self, pairs: list[tuple[int, bytes]]) -> None:
        """Batch at-rest store seam; the default simply loops."""
        for block_id, stored in pairs:
            self._store(block_id, stored)

    # -- whole-platter state (process-executor support) ------------------

    @abstractmethod
    def export_state(self) -> list[bytes | None]:
        """Every block slot -- written or not -- in platter order.

        A state *transfer*, not I/O: neither the statistics nor the
        transform are touched (the bytes are already at rest).
        """

    @abstractmethod
    def import_state(self, blocks: list[bytes | None]) -> None:
        """Replace the entire platter with :meth:`export_state` output.

        A state transfer: statistics untouched, oversized blocks
        rejected exactly as a physical write would reject them, and the
        change journal *tainted* -- its history described the replaced
        platter.
        """

    @abstractmethod
    def snapshot_blocks(self, block_ids) -> dict[int, bytes | None]:
        """At-rest bytes of the listed blocks (a targeted export)."""

    @abstractmethod
    def patch_state(self, num_blocks: int, block_writes: dict[int, bytes | None]) -> None:
        """Apply a targeted delta: grow to ``num_blocks``, set the ids."""

    # -- the attacker's view ---------------------------------------------

    @abstractmethod
    def raw_block(self, block_id: int) -> bytes:
        """Bytes at rest, as an opponent reading the platter sees them."""

    @abstractmethod
    def raw_blocks(self) -> list[tuple[int, bytes]]:
        """Every written block, in platter order -- the full dump."""

    # -- durability (optional; defaults describe the instant device) -----

    def sync(self) -> int:
        """Make every pending write durable; returns blocks made durable.

        The commit-time barrier.  The in-memory device is always
        "durable" (it dies with the process), so the default is a no-op.
        """
        return 0

    def poll(self) -> set[int] | None:
        """Block ids another handle of this device committed since our last look.

        Supports journal-driven cache invalidation across processes:
        ``set()`` means nothing changed (always true for a private
        in-memory device), a non-empty set lists exactly the blocks
        whose at-rest bytes moved, and ``None`` means the device cannot
        prove completeness -- the caller must invalidate wholesale.
        """
        return set()

    def close(self) -> None:
        """Release any operating-system resources (default: none held)."""

    def durability_snapshot(self) -> dict[str, int]:
        """Durability counters in the one shared, mergeable shape."""
        return {field: 0 for field in DURABILITY_FIELDS}

    def _on_journal_seal(self, epoch: int, sealed_ids: frozenset[int]) -> None:
        """Hook: the device's change journal sealed ``epoch``.

        The file platter overrides this to make sealed epochs durable
        (WAL-first); the in-memory device has nothing to do.
        """
