"""Triplet and node sizing arithmetic.

Section 4.2 argues that encrypting search keys *"will result in triplets
that consume large storage spaces on the node blocks.  Fewer triplets can
be fitted onto a given node block, and the depth of the B-Tree would then
increase substantially."*  Experiment C2 quantifies that argument, and
this module holds the arithmetic it needs: bytes per triplet under each
scheme, triplets per block, and the resulting minimum tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log

from repro.exceptions import StorageError


def bytes_for_value(max_value: int) -> int:
    """Bytes needed to store integers in ``[0, max_value]``."""
    if max_value < 0:
        raise StorageError(f"max value must be non-negative, got {max_value}")
    return max(1, (max_value.bit_length() + 7) // 8)


@dataclass(frozen=True)
class TripletLayout:
    """Byte widths of one ``(search key, data pointer, tree pointer)`` triplet.

    ``key_bytes`` is the *stored* key width: the plaintext width for an
    unprotected tree, the disguised width (bounded by ``v`` or ``N``) for
    the substitution schemes, or a full cryptogram width when keys are
    encrypted outright.  ``pointer_cryptogram_bytes`` is the width of the
    single cryptogram ``E(b || a || p)`` holding both pointers; for
    plaintext layouts it is simply the two raw pointer widths.
    """

    key_bytes: int
    pointer_cryptogram_bytes: int

    @property
    def triplet_bytes(self) -> int:
        """Total stored width of one triplet."""
        return self.key_bytes + self.pointer_cryptogram_bytes


@dataclass(frozen=True)
class NodeLayout:
    """How many triplets fit a node block, and what tree that implies.

    A node holding ``n`` triplets stores ``n`` keys, ``n`` pointer
    cryptograms, one extra tree pointer (the paper: *"A node block with n
    triplets would have n+1 search keys, n tree pointers and n data
    pointers"* -- we follow the standard reading of n keys and n+1 tree
    pointers) and a small header.
    """

    block_size: int
    triplet: TripletLayout
    header_bytes: int = 8

    @property
    def max_triplets(self) -> int:
        """Largest ``n`` such that the node fits the block."""
        # block >= header + extra pointer cryptogram + n * triplet
        available = self.block_size - self.header_bytes - self.triplet.pointer_cryptogram_bytes
        n = available // self.triplet.triplet_bytes
        if n < 2:
            raise StorageError(
                f"block of {self.block_size} B holds only {n} triplets of "
                f"{self.triplet.triplet_bytes} B; B-Tree needs >= 2"
            )
        return n

    @property
    def fanout(self) -> int:
        """Maximum children per node (``max_triplets + 1``)."""
        return self.max_triplets + 1

    def min_depth_for(self, records: int) -> int:
        """Minimum B-Tree height (levels of node blocks) for ``records``.

        A tree of height ``h`` with fanout ``f`` indexes at most
        ``f^h - 1`` keys when every node is full; we report the smallest
        ``h`` with ``f^h - 1 >= records``.
        """
        if records < 1:
            return 0
        f = self.fanout
        h = ceil(log(records + 1) / log(f))
        while f**h - 1 < records:
            h += 1
        return h


def plaintext_triplet(max_key: int, max_pointer: int) -> TripletLayout:
    """Layout of an unprotected triplet (baseline for C2)."""
    return TripletLayout(
        key_bytes=bytes_for_value(max_key),
        pointer_cryptogram_bytes=2 * bytes_for_value(max_pointer),
    )


def substituted_triplet(disguise_bound: int, cryptogram_bytes: int) -> TripletLayout:
    """Layout when keys are disguised (bounded by ``v`` or ``N``) and the
    two pointers live in one cryptogram of ``cryptogram_bytes``."""
    return TripletLayout(
        key_bytes=bytes_for_value(disguise_bound - 1),
        pointer_cryptogram_bytes=cryptogram_bytes,
    )


def encrypted_key_triplet(cryptogram_bytes: int) -> TripletLayout:
    """Layout when the key is *encrypted* too: two cryptograms per triplet
    (one for the key, one for the pointer pair)."""
    return TripletLayout(
        key_bytes=cryptogram_bytes,
        pointer_cryptogram_bytes=cryptogram_bytes,
    )
