"""Horizontal partitioning of enciphered databases (``repro.cluster``).

The paper's enciphered B-Tree is a single-file, single-threaded
structure.  This package scales it out the classical way -- N shards,
each a private :class:`~repro.core.database.EncipheredDatabase` -- with a
security bonus specific to enciphered storage: every shard carries its
own substitution secret and independently derived superblock/data keys,
so one compromised shard opens one shard, and an opponent dumping all
platters cannot correlate block frequencies across shards.

* :mod:`repro.cluster.router` -- hash and range key-to-shard routing;
* :mod:`repro.cluster.manifest` -- the enciphered, self-describing
  cluster manifest (shard count, router, key-derivation labels, shard
  scope names) a durable backend stores beside its platters;
* :mod:`repro.cluster.sharded` -- the
  :class:`~repro.cluster.sharded.ShardedEncipheredDatabase` engine
  (pluggable serial/thread/process fan-out, per-shard key derivation,
  cross-shard transactions);
* :mod:`repro.cluster.executor` -- the process-pool backend: picklable
  shard specs, one worker process per shard, merged counter rollups;
* :mod:`repro.cluster.stats` -- per-shard and aggregated counter rollups.

Benchmark C8 (``benchmarks/bench_c8_sharding.py``) measures the
cluster's write amplification, range-query speedup and cross-shard block
indistinguishability; C10 (``benchmarks/bench_c10_crypto_throughput.py``)
measures cipher-kernel throughput and the executor backends' wall-clock.
"""

from repro.cluster.executor import ProcessShardExecutor, ShardSpec
from repro.cluster.manifest import ClusterManifest
from repro.cluster.router import HashRouter, RangeRouter, ShardRouter
from repro.cluster.sharded import ShardedEncipheredDatabase, derive_shard_key
from repro.cluster.stats import (
    ClusterStats,
    merge_counter_dicts,
    subtract_counter_dicts,
)

__all__ = [
    "ClusterManifest",
    "ClusterStats",
    "HashRouter",
    "ProcessShardExecutor",
    "RangeRouter",
    "ShardRouter",
    "ShardSpec",
    "ShardedEncipheredDatabase",
    "derive_shard_key",
    "merge_counter_dicts",
    "subtract_counter_dicts",
]
