"""Horizontal partitioning of enciphered databases (``repro.cluster``).

The paper's enciphered B-Tree is a single-file, single-threaded
structure.  This package scales it out the classical way -- N shards,
each a private :class:`~repro.core.database.EncipheredDatabase` -- with a
security bonus specific to enciphered storage: every shard carries its
own substitution secret and independently derived superblock/data keys,
so one compromised shard opens one shard, and an opponent dumping all
platters cannot correlate block frequencies across shards.

* :mod:`repro.cluster.router` -- hash and range key-to-shard routing;
* :mod:`repro.cluster.sharded` -- the
  :class:`~repro.cluster.sharded.ShardedEncipheredDatabase` engine
  (thread-pool fan-out, per-shard key derivation, cross-shard
  transactions);
* :mod:`repro.cluster.stats` -- per-shard and aggregated counter rollups.

Benchmark C8 (``benchmarks/bench_c8_sharding.py``) measures the
cluster's write amplification, range-query speedup and cross-shard block
indistinguishability.
"""

from repro.cluster.router import HashRouter, RangeRouter, ShardRouter
from repro.cluster.sharded import ShardedEncipheredDatabase, derive_shard_key
from repro.cluster.stats import ClusterStats, merge_counter_dicts

__all__ = [
    "ClusterStats",
    "HashRouter",
    "RangeRouter",
    "ShardRouter",
    "ShardedEncipheredDatabase",
    "derive_shard_key",
    "merge_counter_dicts",
]
