"""Process-pool shard execution: fan-out that sidesteps the GIL.

Benchmark C8 measured the thread-pool fan-out winning ~1x wall-clock
despite a ~2.9x shorter critical path: pure-Python DES serialises on the
GIL, so threads only overlap the (simulated, instant) I/O.  Shards are
already share-nothing -- each owns its platters, substitution secret and
derived keys -- which is exactly the shape that *processes* parallelise.

This module supplies the cluster's ``executor="processes"`` backend:

* :class:`ShardSpec` -- a picklable description of one shard (platter
  bytes at rest, derived keys, deterministic factories, cache config)
  from which a worker process rebuilds the shard via
  :meth:`~repro.core.database.EncipheredDatabase.reopen`.
* :func:`_shard_worker` -- the worker loop: one process per shard,
  request/reply over a pipe, serving ``range_search`` / ``get_many`` /
  ``bulk_load`` / ``put_many`` / ``delete_many`` / ``stats`` against its
  private copy.  The mutating ops (write offload) execute the batch on
  the replica and ship the resulting
  :class:`~repro.storage.journal.ShardDelta` back for parent apply --
  the same promote-once channel ``bulk_load`` uses.
* :class:`ProcessShardExecutor` -- the parent-side coordinator.  It
  ships each shard's spec lazily and re-syncs only when the parent's
  copy has changed (an *epoch* counter bumped by every cluster-level
  mutation), merges worker-side operation counters back into the
  cluster's statistics (the security cost model must count every
  decryption, wherever it ran), and installs the state a worker's
  ``bulk_load`` produced back into the parent's shard objects.

A re-sync is *incremental* by default: the shard's change journals
(:mod:`repro.storage.journal`) record which node/record blocks mutated
per epoch, and a stale worker receives a
:class:`~repro.storage.journal.ShardDelta` -- just those blocks'
at-rest bytes plus the small metadata -- instead of the whole platter.
The full ship survives as the fallback (first contact, respawned
worker after a crash, journal truncated past the worker's epoch) and as
the measurable baseline (``delta_sync=False``, benchmark C11).

Two sources of truth are avoided by construction: the parent's shards
remain authoritative; a worker holds a *replica* that is re-synced by
epoch before any use and is promoted back exactly once (bulk_load's
ship-back, under the cluster's write path).

Requirements: the substitution/pointer-cipher factories must be
picklable (module-level functions, as
:meth:`~repro.cluster.sharded.ShardedEncipheredDatabase.reopen` already
requires them to be deterministic).  The ``fork`` start method is used
where available; under ``spawn`` the factories' module must be
importable by the child.

Durable backends compose transparently: a parent shard on a
:class:`~repro.storage.platter.FilePlatter` exports the same at-rest
byte sequence as an in-memory one (``export_state`` / ``raw_blocks``
abstract over the device), so its spec ships unchanged.  Worker
replicas deliberately stay on :class:`~repro.storage.disk.
SimulatedDisk` regardless of the parent's backend -- sharing a platter
*file* across processes would mean uncoordinated handles racing the
WAL, and a replica's writes must never land on the parent's platter
anyway (the parent is authoritative; bulk_load state is promoted
through it).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.stats import subtract_counter_dicts
from repro.core.database import EncipheredDatabase
from repro.core.records import RecordStore
from repro.crypto.base import IntegerCipher
from repro.exceptions import (
    ShardUnavailableError,
    StorageError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs import ObsConfig
from repro.storage.disk import SimulatedDisk
from repro.substitution.base import KeySubstitution


class UncommittedShardState(StorageError):
    """A shard with uncommitted pages cannot be shipped to a worker.

    The cluster treats this as a routing signal, not a failure: the
    fan-out that hit it re-runs on an in-process backend, which serves
    uncommitted state with the right semantics.
    """


@dataclass
class ShardSpec:
    """Everything a worker needs to rebuild one shard, picklable.

    ``node_blocks`` and the record state carry the platters *at rest*
    (still enciphered); the secrets travel alongside because the worker
    sits inside the same trusted boundary as the parent -- this is an
    in-memory hand-off between cooperating processes, not storage.
    """

    index: int
    substitution_factory: Callable[[int], KeySubstitution]
    pointer_cipher_factory: Callable[[int], IntegerCipher]
    super_key: bytes
    node_block_size: int
    node_blocks: list[bytes | None]
    record_state: dict[str, object]
    cache_blocks: int
    decoded_node_cache_blocks: int
    decoded_node_cache_bytes: int
    #: The parent shard's observability switch, so the worker's replica
    #: instruments identically -- its histogram/heat deltas then merge
    #: into one coherent cross-process picture.
    obs_config: ObsConfig | None = None

    @property
    def payload_bytes(self) -> int:
        """Platter bytes this full ship moves (the C11 baseline metric)."""
        node = sum(len(b) for b in self.node_blocks if b is not None)
        records = sum(
            len(b) for b in self.record_state["blocks"] if b is not None
        )
        return node + records

    def open(self) -> EncipheredDatabase:
        """Rebuild the shard from this spec (cold caches, fresh counters)."""
        disk = SimulatedDisk(block_size=self.node_block_size)
        disk.import_state(self.node_blocks)
        records = RecordStore.from_state(self.record_state)
        return EncipheredDatabase.reopen(
            self.substitution_factory(self.index),
            self.pointer_cipher_factory(self.index),
            disk,
            records,
            super_key=self.super_key,
            cache_blocks=self.cache_blocks,
            decoded_node_cache_blocks=self.decoded_node_cache_blocks,
            decoded_node_cache_bytes=self.decoded_node_cache_bytes,
            observability=self.obs_config,
        )


def spec_from_shard(
    shard: EncipheredDatabase,
    index: int,
    substitution_factory: Callable[[int], KeySubstitution],
    pointer_cipher_factory: Callable[[int], IntegerCipher],
    checkpoint_epoch: int | None = None,
) -> ShardSpec:
    """Capture a parent shard's current durable state as a spec.

    The platter must describe the shard's logical state, so a shard
    with uncommitted work (a write-back pager's dirty pages) cannot be
    shipped: committing here would silently make a *read* durable and
    break rollback semantics.  The cluster routes fan-outs over
    uncommitted shards to the in-process backends instead, so this
    guard only trips on direct misuse.

    ``checkpoint_epoch`` marks this snapshot in the shard's change
    journals (under the same read lock, so the snapshot and the
    truncation see the same state): history at or before it is subsumed
    by the full ship and dropped, and later syncs can resume shipping
    deltas from this point.
    """
    with shard.lock.read_locked():
        # checked under the lock: an autocommit writer dirties pages
        # transiently inside its write-locked scope, and a reader must
        # not observe that in-flight state as "uncommitted".  Both forms
        # of uncommitted work are refused -- deferred write-back pages
        # AND write-through mutations whose superblock rewrite is still
        # pending (autocommit=False), where the platter alone would
        # reopen stale or not at all.
        if shard.tree.pager.dirty_blocks or shard.has_uncommitted_changes:
            raise UncommittedShardState(
                f"shard {index} has uncommitted state; commit before "
                "shipping it to a process worker"
            )
        if checkpoint_epoch is not None:
            shard.truncate_journals(checkpoint_epoch)
        return ShardSpec(
            index=index,
            substitution_factory=substitution_factory,
            pointer_cipher_factory=pointer_cipher_factory,
            super_key=shard._super_key,
            node_block_size=shard.disk.block_size,
            node_blocks=shard.disk.export_state(),
            record_state=shard.records.export_state(),
            cache_blocks=shard.tree.pager.capacity,
            decoded_node_cache_blocks=shard.tree.pager.decoded.capacity,
            decoded_node_cache_bytes=shard.tree.pager.decoded.max_bytes,
            obs_config=shard.obs.config,
        )


def _send_error(conn, exc: Exception) -> None:
    """Reply with the exception itself when it pickles, else a summary."""
    try:
        pickle.dumps(exc)
    except Exception:
        exc = StorageError(f"shard worker error: {type(exc).__name__}: {exc}")
    conn.send(("error", exc))


def _shard_worker(conn) -> None:
    """One shard's server loop: ``(op, payload)`` in, ``(tag, value)`` out.

    The database handle lives for the life of the process and is
    replaced wholesale by each ``open`` (the parent's staleness
    protocol); every other op is a plain method call against it.
    """
    db: EncipheredDatabase | None = None
    # Local epoch counter scoping write-offload batches: the replica's
    # journals are private (the parent's epochs never reach them), so
    # each offloaded batch checkpoints at the counter, mutates, seals
    # counter+1 and collects exactly that batch's changed blocks.
    offload_epoch = 0
    # Chaos cues (armed by the parent's "chaos" op): crash or hang the
    # worker after N serving ops -- the deterministic stand-in for a
    # SIGKILL'd or wedged worker that the supervision tests drive.
    chaos = {"crash": None, "hang": None, "hang_s": 0.0}

    def _chaos_tick() -> None:
        if chaos["crash"] is not None:
            chaos["crash"] -= 1
            if chaos["crash"] <= 0:
                os._exit(17)  # die without replying: the parent sees EOF
        if chaos["hang"] is not None:
            chaos["hang"] -= 1
            if chaos["hang"] <= 0:
                chaos["hang"] = None
                time.sleep(chaos["hang_s"])  # the parent's deadline reaps us

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing to clean up but ourselves
        try:
            if op == "stop":
                conn.send(("ok", None))
                break
            if op == "open":
                db = payload.open()
                offload_epoch = 0  # fresh replica, fresh journals
                # the baseline the parent subtracts: whatever reopen's
                # superblock check and verification walk just counted
                conn.send(("ok", db.stats()))
            elif op == "delta":
                # a targeted catch-up of the live replica; applying is a
                # pure state transfer (no cipher, no I/O counters), and
                # the parent re-baselines on the returned stats anyway
                db.apply_delta(payload)
                conn.send(("ok", db.stats()))
            elif op == "warm":
                _chaos_tick()
                conn.send(("ok", db.warm(payload)))
            elif op == "range_search":
                _chaos_tick()
                conn.send(("ok", db.range_search(*payload)))
            elif op == "get_many":
                _chaos_tick()
                keys, default = payload
                conn.send(("ok", [db.get(key, default) for key in keys]))
            elif op == "bulk_load":
                _chaos_tick()
                db.bulk_load(payload)
                conn.send((
                    "ok",
                    (
                        db.stats(),
                        db.tree.snapshot_state(),
                        db.disk.export_state(),
                        db.records.export_state(),
                    ),
                ))
            elif op in ("put_many", "delete_many"):
                # Write offload: run the single-shard batch on the
                # replica (where this process's cipher plane does the
                # work) and ship the resulting delta back for parent
                # apply -- the mutation mirror of bulk_load's channel.
                _chaos_tick()
                base = offload_epoch
                db.truncate_journals(base)  # replica == parent snapshot
                if op == "put_many":
                    count = db.put_many(payload)
                else:
                    count = db.delete_many(payload)
                offload_epoch = base + 1
                db.seal_changes(offload_epoch)
                delta = db.collect_delta(base, offload_epoch)
                if delta is not None:
                    conn.send(("ok", (db.stats(), count, "delta", delta)))
                else:
                    # journals could not prove completeness (shouldn't
                    # happen right after a seal, but the full ship is
                    # always a correct answer)
                    conn.send((
                        "ok",
                        (
                            db.stats(),
                            count,
                            "full",
                            (
                                db.tree.snapshot_state(),
                                db.disk.export_state(),
                                db.records.export_state(),
                            ),
                        ),
                    ))
            elif op == "stats":
                conn.send(("ok", db.stats()))
            elif op == "heat":
                # the variable-shape block-heat map travels on its own
                # channel; the parent delta-folds it like the counters
                conn.send(("ok", db.obs.heat.block_counts()))
            elif op == "clear_caches":
                db.clear_caches()
                conn.send(("ok", None))
            elif op == "ping":
                # heartbeat: answered even before any "open", so the
                # supervisor can probe liveness without shipping state
                conn.send(("ok", "pong"))
            elif op == "chaos":
                chaos["crash"] = payload.get("crash_after")
                chaos["hang"] = payload.get("hang_after")
                chaos["hang_s"] = payload.get("hang_s", 0.0)
                conn.send(("ok", None))
            else:
                conn.send(("error", StorageError(f"unknown worker op {op!r}")))
        except Exception as exc:  # reply-and-continue: the db is still valid
            _send_error(conn, exc)
    conn.close()


def _zero_nonadditive(delta: dict[str, object]) -> dict[str, object]:
    """Zero the leaves that are not summable counters.

    A worker's ``size`` mirrors the parent's (summing would double it),
    and ``bytes_cached`` is a *gauge* of the worker replica's own cache
    footprint -- a delta of it is meaningless at the cluster level and
    could even push the parent's gauge negative.
    """
    delta = {**delta, "size": 0}
    decoded = delta.get("node_decoded_cache")
    if isinstance(decoded, dict) and "bytes_cached" in decoded:
        delta["node_decoded_cache"] = {**decoded, "bytes_cached": 0}
    return delta


class ProcessShardExecutor:
    """Parent-side coordinator for one worker process per shard.

    Created lazily by the cluster's ``executor="processes"`` backend.
    Dispatch is serialised per executor (one request/reply in flight per
    pipe); the parallelism is across the workers, where the actual
    cryptography runs.
    """

    def __init__(
        self,
        substitution_factory: Callable[[int], KeySubstitution],
        pointer_cipher_factory: Callable[[int], IntegerCipher],
        num_shards: int,
        delta_sync: bool = True,
        op_deadline_s: float | None = None,
        respawn_limit: int = 3,
    ) -> None:
        self._substitution_factory = substitution_factory
        self._pointer_cipher_factory = pointer_cipher_factory
        #: Per-op deadline on the result pipes: a worker that takes
        #: longer than this to answer is presumed hung, killed, and the
        #: op fails with :class:`WorkerTimeoutError` (retryable -- a
        #: fresh worker gets one more shot).  ``None`` waits forever,
        #: the pre-supervision behaviour.
        self.op_deadline_s = op_deadline_s
        #: Consecutive respawns tolerated per shard before the executor
        #: declares the worker unsupervisable and raises
        #: :class:`ShardUnavailableError`.  Any successful reply resets
        #: the count -- the budget bounds *consecutive* failures, not
        #: lifetime ones.
        self.respawn_limit = respawn_limit
        #: When True (default), a stale worker is caught up by shipping
        #: only the blocks its shard's journals prove changed; False
        #: forces the PR-4 behaviour (full state re-ship on every epoch
        #: mismatch) -- the baseline arm of benchmark C11.
        self.delta_sync = delta_sync
        #: Ship accounting for benchmark C11 and ``cluster.sync_stats()``:
        #: how many syncs went full vs delta, and the platter bytes moved
        #: by each kind.
        self.sync_stats = {
            "full_ships": 0,
            "delta_ships": 0,
            "full_bytes": 0,
            "delta_bytes": 0,
            "delta_blocks": 0,
            # id-index bytes the (start, count) run encoding saved across
            # every delta shipped in either direction (satellite of
            # ROADMAP item 4b)
            "delta_run_bytes_saved": 0,
            # write offload: batches executed worker-side, and the bytes/
            # blocks their result deltas shipped back to the parent
            "offloaded_batches": 0,
            "offload_bytes": 0,
            "offload_blocks": 0,
            # supervision (PR 10): deaths observed mid-conversation,
            # deadline kills, bounded respawns, ops salvaged by a
            # respawn-and-retry, and heartbeat probes answered
            "worker_deaths": 0,
            "op_timeouts": 0,
            "respawns": 0,
            "op_retries": 0,
            "heartbeats": 0,
        }
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._mp = multiprocessing.get_context()
        self._procs: list[multiprocessing.process.BaseProcess | None] = [None] * num_shards
        self._conns: list[object | None] = [None] * num_shards
        # supervision bookkeeping: whether shard i ever had a worker
        # (distinguishes first spawn from respawn) and how many respawns
        # in a row have gone unrewarded by a successful reply
        self._spawned = [False] * num_shards
        self._consec_respawns = [0] * num_shards
        #: Epoch of the spec each worker currently holds (-1 = none yet).
        self.epochs_sent = [-1] * num_shards
        # Counter accounting: ``_base[i]`` is worker i's stats right
        # after its latest open; ``_harvested[i]`` accumulates deltas
        # from replicas that were since replaced or shut down.
        self._base: list[dict[str, object] | None] = [None] * num_shards
        self._harvested: list[list[dict[str, object]]] = [[] for _ in range(num_shards)]
        # Block-heat accounting, mirroring the counter baseline: what of
        # worker i's block-touch map has already been folded into the
        # parent shard's HeatMap.
        self._heat_base: list[dict[int, int]] = [{} for _ in range(num_shards)]
        # One request/reply may be in flight per pipe; concurrent cluster
        # calls (the thread backend's bread and butter) must not
        # interleave frames, so parent-side dispatch is serialised.
        # Reentrant: map() nests sync() nests harvest().
        self._dispatch_lock = threading.RLock()

    # -- plumbing --------------------------------------------------------

    _DEADLINE_DEFAULT = object()  # sentinel: "use self.op_deadline_s"

    def _reap(self, index: int, timed_out: bool = False) -> None:
        """Put down worker ``index`` and forget its pipe state.

        Called when the worker died mid-conversation (EOF on the pipe)
        or missed its op deadline.  The process is killed if still
        alive (a hung worker must not linger), the connection dropped,
        and the replica bookkeeping reset so the next :meth:`sync` does
        a full respawn-and-resync.
        """
        proc = self._procs[index]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - stubborn worker
                    proc.kill()
                    proc.join(timeout=1.0)
            self._procs[index] = None
        conn = self._conns[index]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already broken
                pass
            self._conns[index] = None
        self._base[index] = None
        self._heat_base[index] = {}
        self.epochs_sent[index] = -1
        self.sync_stats["worker_deaths"] += 1
        if timed_out:
            self.sync_stats["op_timeouts"] += 1

    def _recv(self, index: int, deadline=_DEADLINE_DEFAULT):
        conn = self._conns[index]
        if conn is None:
            raise WorkerCrashError(index, "worker died: no live connection")
        if deadline is self._DEADLINE_DEFAULT:
            deadline = self.op_deadline_s
        if deadline is not None and not conn.poll(deadline):
            self._reap(index, timed_out=True)
            raise WorkerTimeoutError(
                index, f"worker missed its {deadline}s op deadline"
            )
        try:
            tag, value = conn.recv()
        except (EOFError, OSError) as exc:
            self._reap(index)
            raise WorkerCrashError(index, f"worker died: {exc}") from exc
        self._consec_respawns[index] = 0  # a reply is proof of life
        if tag == "error":
            raise value
        return value

    def _request(self, index: int, op: str, payload, deadline=_DEADLINE_DEFAULT):
        conn = self._conns[index]
        if conn is None:
            raise WorkerCrashError(index, "worker died: no live connection")
        try:
            conn.send((op, payload))
        except (OSError, ValueError) as exc:  # dead worker: same surface as a
            # recv failure, so harvest/extra_counters/close degrade
            # instead of crashing
            self._reap(index)
            raise WorkerCrashError(index, f"worker died: {exc}") from exc
        return self._recv(index, deadline=deadline)

    def _ensure_worker(self, index: int) -> bool:
        """Spawn shard ``index``'s worker if absent; True when it respawned."""
        if self._procs[index] is not None and self._procs[index].is_alive():
            return False
        respawn = False
        if self._spawned[index]:
            # bounded automatic respawn: a worker that keeps dying
            # without ever answering stops being worth resurrecting
            if self._consec_respawns[index] >= self.respawn_limit:
                raise ShardUnavailableError(
                    index,
                    f"worker respawn budget exhausted "
                    f"({self.respawn_limit} consecutive respawns)",
                )
            self._consec_respawns[index] += 1
            self.sync_stats["respawns"] += 1
            respawn = True
        parent_conn, child_conn = self._mp.Pipe()
        proc = self._mp.Process(
            target=_shard_worker,
            args=(child_conn,),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn
        self._spawned[index] = True
        self.epochs_sent[index] = -1
        self._base[index] = None
        self._heat_base[index] = {}
        return respawn

    # -- supervision -----------------------------------------------------

    def heartbeat(self, timeout_s: float = 1.0) -> list[bool | None]:
        """Probe every spawned worker's pipe with a ``ping``.

        Returns one entry per shard: ``True`` for a live worker that
        answered in time, ``False`` for one that was just found dead (or
        hung) and reaped, ``None`` for a shard with no worker spawned.
        A reaped worker respawns on its next :meth:`sync`, so a periodic
        heartbeat turns silent deaths into bounded-latency detections.
        """
        with self._dispatch_lock:
            alive: list[bool | None] = []
            for index, conn in enumerate(self._conns):
                if conn is None:
                    alive.append(None)
                    continue
                try:
                    ok = self._request(
                        index, "ping", None, deadline=timeout_s
                    ) == "pong"
                except StorageError:
                    ok = False
                self.sync_stats["heartbeats"] += 1
                alive.append(ok)
            return alive

    def inject_worker_fault(
        self,
        index: int,
        *,
        crash_after: int | None = None,
        hang_after: int | None = None,
        hang_s: float = 3600.0,
    ) -> None:
        """Arm a chaos cue in worker ``index`` (spawning it if needed).

        ``crash_after=N`` makes the worker die (``os._exit``) at the
        start of its Nth subsequent serving op -- before replying, so the
        parent observes a mid-conversation EOF, exactly like a SIGKILL.
        ``hang_after=N`` makes it sleep ``hang_s`` at that op instead,
        the scenario the per-op deadline exists for.
        """
        with self._dispatch_lock:
            self._ensure_worker(index)
            self._request(index, "chaos", {
                "crash_after": crash_after,
                "hang_after": hang_after,
                "hang_s": hang_s,
            })

    def sync(self, index: int, shard: EncipheredDatabase, epoch: int) -> None:
        """Make worker ``index`` hold the parent's current shard state.

        A worker that already holds *some* epoch is caught up with a
        :class:`~repro.storage.journal.ShardDelta` -- only the blocks
        the shard's journals sealed since that epoch, O(changes) instead
        of O(database) -- when ``delta_sync`` is on and the journals can
        prove completeness.  Everything else (first contact, respawned
        worker, truncated journal, uncommitted parent state) takes the
        full-spec path, whose own guards still apply.
        """
        with self._dispatch_lock:
            if self._ensure_worker(index):
                # mark the resurrection in the shard's span stream: the
                # full ship that follows is recovery traffic, not load
                with shard.obs.trace("executor.respawn"):
                    pass
            if self.epochs_sent[index] == epoch:
                return
            # the stale replica's work must keep counting (heat included)
            self.harvest(index, shard)
            delta = None
            if self.delta_sync and self.epochs_sent[index] >= 0:
                delta = shard.collect_delta(self.epochs_sent[index], epoch)
            if delta is not None:
                delta.index = index
                with shard.obs.trace("executor.delta_ship"):
                    self._base[index] = self._request(index, "delta", delta)
                self.sync_stats["delta_ships"] += 1
                self.sync_stats["delta_bytes"] += delta.payload_bytes
                self.sync_stats["delta_blocks"] += delta.blocks_shipped
                self.sync_stats["delta_run_bytes_saved"] += delta.run_bytes_saved
            else:
                with shard.obs.trace("executor.full_ship"):
                    spec = spec_from_shard(
                        shard,
                        index,
                        self._substitution_factory,
                        self._pointer_cipher_factory,
                        checkpoint_epoch=epoch if self.delta_sync else None,
                    )
                    try:
                        self._base[index] = self._request(index, "open", spec)
                    except (pickle.PicklingError, AttributeError, TypeError) as exc:
                        raise StorageError(
                            "executor='processes' requires picklable substitution and "
                            f"pointer-cipher factories (module-level functions): {exc}"
                        ) from exc
                # "open" replaced the replica wholesale: its block-touch
                # map restarted from zero alongside its counters
                self._heat_base[index] = {}
                self.sync_stats["full_ships"] += 1
                self.sync_stats["full_bytes"] += spec.payload_bytes
            self.epochs_sent[index] = epoch

    # -- fan-out ---------------------------------------------------------

    def map(
        self,
        op: str,
        shard_ids: Sequence[int],
        payloads: Sequence[object],
        shards: Sequence[EncipheredDatabase],
        epochs: Sequence[int],
    ) -> list:
        """Run ``op`` on every listed worker, overlapping their work.

        Requests are pipelined -- all sent before any reply is awaited --
        so N workers compute concurrently while the parent blocks on the
        first reply.  Every reply is drained even when one shard errors:
        an unread reply would desynchronise that pipe's request/reply
        protocol and get served as the answer to the *next* request.
        """
        with self._dispatch_lock:
            sent: list[int] = []
            try:
                for index, payload in zip(shard_ids, payloads):
                    self.sync(index, shards[index], epochs[index])
                    self._conns[index].send((op, payload))
                    sent.append(index)
            except BaseException:
                # a later shard's sync/send failed: requests already in
                # flight must still be answered and drained, or their
                # replies would surface as answers to future requests.
                # The drained work is about to be re-run elsewhere (the
                # cluster falls back in-process), so absorb it into the
                # counter baseline -- harvesting it later would double-
                # count cipher operations against the other backends.
                for index in sent:
                    try:
                        self._recv(index)
                        self._base[index] = self._request(index, "stats", None)
                    except Exception:
                        pass
                raise
            results = []
            failures: dict[int, Exception] = {}
            for pos, index in enumerate(shard_ids):
                try:
                    results.append(self._recv(index))
                except Exception as exc:
                    failures[pos] = exc
                    results.append(None)
            # one respawn-and-retry round: every op dispatched through
            # map() is idempotent against a fresh replica (reads, warm,
            # bulk_load onto a re-shipped copy), so a worker that died
            # or hung mid-answer gets respawned, re-synced and asked
            # exactly once more.  Anything else -- a real error reply,
            # an exhausted respawn budget -- stays failed.
            for pos, exc in list(failures.items()):
                if not isinstance(exc, WorkerCrashError):
                    continue
                index = shard_ids[pos]
                try:
                    self.sync(index, shards[index], epochs[index])
                    results[pos] = self._request(index, op, payloads[pos])
                except Exception as retry_exc:
                    failures[pos] = retry_exc
                else:
                    del failures[pos]
                    self.sync_stats["op_retries"] += 1
            if failures:
                raise next(iter(failures.values()))
            return results

    def map_settled(
        self,
        op: str,
        shard_ids: Sequence[int],
        payloads: Sequence[object],
        shards: Sequence[EncipheredDatabase],
        epochs: Sequence[int],
    ) -> list[tuple[bool, object]]:
        """Like :meth:`map`, but per-shard ``(ok, value_or_exc)`` outcomes.

        The write-offload path needs partial results: ``put_many``'s
        contract applies independent shards' slices even when a sibling
        slice fails, so a fail-fast ``map`` (which discards the
        successful replies) cannot serve it.  Used for *mutating* ops,
        so the abort path additionally marks every already-dispatched
        replica stale -- its state diverged the moment the request went
        out, and the caller is about to re-run the batch parent-side.
        """
        with self._dispatch_lock:
            sent: list[int] = []
            try:
                for index, payload in zip(shard_ids, payloads):
                    self.sync(index, shards[index], epochs[index])
                    self._conns[index].send((op, payload))
                    sent.append(index)
            except BaseException:
                # mirror map()'s drain, plus invalidation: a drained
                # *mutation* left the replica ahead of the parent, and
                # absorbing its counters into the baseline (not
                # harvesting) keeps the about-to-be-re-run work counted
                # exactly once
                for index in sent:
                    try:
                        self._recv(index)
                        self._base[index] = self._request(index, "stats", None)
                    except Exception:
                        pass
                    self.epochs_sent[index] = -1
                raise
            outcomes: list[tuple[bool, object]] = []
            for index in shard_ids:
                try:
                    outcomes.append((True, self._recv(index)))
                except Exception as exc:
                    outcomes.append((False, exc))
            return outcomes

    # -- counter rollup --------------------------------------------------

    def harvest(self, index: int, shard: EncipheredDatabase | None = None) -> None:
        """Fold worker ``index``'s counter delta into the kept totals.

        Given the parent ``shard``, the worker's record-block heat delta
        is folded into the shard's :class:`~repro.obs.heat.HeatMap` in
        the same pass (the variable-shape map cannot ride in the counter
        dicts).
        """
        with self._dispatch_lock:
            if self._base[index] is None or self._conns[index] is None:
                return
            try:
                current = self._request(index, "stats", None)
            except StorageError:
                return  # worker already gone; its delta is lost with it
            delta = subtract_counter_dicts(current, self._base[index])
            self._harvested[index].append(_zero_nonadditive(delta))
            self._base[index] = current
            if shard is not None and shard.obs.enabled:
                try:
                    shard.obs.heat.add_blocks(self._heat_delta(index))
                except StorageError:
                    pass  # worker died between requests; heat lost with it

    def _heat_delta(self, index: int) -> dict[int, int]:
        """Worker ``index``'s block touches not yet folded into the parent."""
        current: dict[int, int] = self._request(index, "heat", None)
        base = self._heat_base[index]
        delta = {
            block_id: n - base.get(block_id, 0)
            for block_id, n in current.items()
            if n - base.get(block_id, 0)
        }
        self._heat_base[index] = current
        return delta

    def rebase(self, index: int, stats_after: dict[str, object]) -> None:
        """Absorb a state-shipping op's counters after installing its state.

        The worker did the work (its delta up to ``stats_after`` is
        harvested so the cost model keeps every operation) and the
        parent now owns the resulting state, so the baseline moves to
        ``stats_after`` -- those operations must not be counted again.
        """
        with self._dispatch_lock:
            if self._base[index] is None:
                return
            delta = subtract_counter_dicts(stats_after, self._base[index])
            self._harvested[index].append(_zero_nonadditive(delta))
            self._base[index] = stats_after

    def extra_counters(
        self, index: int, shard: EncipheredDatabase | None = None
    ) -> list[dict[str, object]]:
        """Counter dicts to merge into shard ``index``'s parent stats.

        ``shard`` additionally folds the worker's live block-heat delta
        into the parent's heat map (see :meth:`harvest`), so a
        ``stats()`` call observes up-to-date heat as well.
        """
        with self._dispatch_lock:
            extras = list(self._harvested[index])
            if self._base[index] is not None and self._conns[index] is not None:
                try:
                    current = self._request(index, "stats", None)
                    if shard is not None and shard.obs.enabled:
                        shard.obs.heat.add_blocks(self._heat_delta(index))
                except StorageError:
                    return extras
                extras.append(
                    _zero_nonadditive(subtract_counter_dicts(current, self._base[index]))
                )
            return extras

    def invalidate(self, shard_ids: Sequence[int]) -> None:
        """Mark the listed workers' replicas stale (re-ship before reuse).

        Used when a worker's state may have diverged from the parent --
        e.g. a fan-out ``bulk_load`` that failed on a sibling shard
        after this worker already loaded its slice.  Counters are not
        lost: the next :meth:`sync` harvests before re-opening.
        """
        with self._dispatch_lock:
            for index in shard_ids:
                self.epochs_sent[index] = -1

    def clear_caches(self) -> None:
        """Drop every live worker's plaintext caches (cold-start support).

        A dead worker is skipped, like everywhere else on this surface:
        its replica (caches included) is gone with it, and it will be
        respawned cold on next use.
        """
        with self._dispatch_lock:
            for index, conn in enumerate(self._conns):
                if conn is not None and self._base[index] is not None:
                    try:
                        self._request(index, "clear_caches", None)
                    except StorageError:
                        continue

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Harvest final counters and stop every worker."""
        with self._dispatch_lock:
            for index, conn in enumerate(self._conns):
                if conn is None:
                    continue
                self.harvest(index)
                try:
                    # bounded even without a configured op deadline: a
                    # hung worker must not be able to block shutdown
                    self._request(
                        index, "stop", None,
                        deadline=self.op_deadline_s or 5.0,
                    )
                except StorageError:
                    pass  # already dead; join below reaps it
                if self._conns[index] is not None:
                    self._conns[index].close()
                self._conns[index] = None
                self._base[index] = None
                self.epochs_sent[index] = -1
            for index, proc in enumerate(self._procs):
                if proc is not None:
                    proc.join(timeout=5)
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.terminate()
                        proc.join(timeout=5)
                    self._procs[index] = None
