"""The enciphered cluster manifest: a cluster that describes itself.

Before PR 6, :meth:`~repro.cluster.sharded.ShardedEncipheredDatabase.
reopen` trusted the caller to supply the shard count, the router kind
and boundaries, and the shard parts *in the right order* -- a
mis-remembered configuration silently mis-routes (the placement
validator catches it, but only because it re-walks the data).  The
manifest makes the cluster self-describing: one small enciphered blob,
stored by the backend beside the platters, recording

* the format version and shard count,
* the router kind and (for a range router) its boundaries,
* the per-shard key-derivation labels (so the reopen re-derives each
  shard's superblock/data keys from the base secrets exactly as the
  create did),
* the shared geometry (block size, record size) the record stores and
  platters were built with,
* each shard's backend scope name, in shard order.

Like every other at-rest artefact, the manifest is enciphered -- under
a key derived from the cluster's base superblock secret with its own
label, so an opponent holding the files learns the shard *count* at
most from directory structure, not the routing boundaries (which are
plaintext key values!) nor the derivation labels.  The layout follows
the ubik ``.DB0`` idiom the platter header uses: magic, version,
tagged length-prefixed values, trailing CRC-32.  The magic
authenticates the key (wrong secret -> garbage magic -> clean error)
and the CRC catches torn or tampered bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.cluster.router import HashRouter, RangeRouter, ShardRouter
from repro.crypto.des import DES
from repro.crypto.modes import CBCCipher
from repro.exceptions import CryptoError, PlatterFormatError, StorageError

__all__ = ["ClusterManifest", "MANIFEST_MAGIC", "MANIFEST_VERSION"]

MANIFEST_MAGIC = b"HSMF1990"
MANIFEST_VERSION = 1

#: Key-derivation label for the manifest cipher itself (the per-shard
#: labels it *records* are data; this one is fixed by the format).
_MANIFEST_LABEL = b"MNFS"

# value tags (u8); multi-valued tags repeat, order significant
_TAG_NUM_SHARDS = 1
_TAG_ROUTER_KIND = 2
_TAG_BOUNDARY = 3
_TAG_BLOCK_SIZE = 4
_TAG_RECORD_SIZE = 5
_TAG_SUPER_LABEL = 6
_TAG_DATA_LABEL = 7
_TAG_SHARD_SCOPE = 8

_ENTRY = struct.Struct("<BI")


def _manifest_cipher(super_key: bytes) -> CBCCipher:
    """DES-CBC under ``DES(super_key)(label || 0)`` -- the same
    derivation shape as the per-shard keys, with the manifest's own
    label, so no shard key ever doubles as the manifest key."""
    key = DES(super_key).encrypt_block(_MANIFEST_LABEL + (0).to_bytes(4, "big"))
    iv = DES(key).encrypt_block(b"MANIFEST")
    return CBCCipher(DES(key), iv)


@dataclass
class ClusterManifest:
    """Everything a manifest-driven reopen needs beyond the secrets."""

    num_shards: int
    router_kind: str
    block_size: int
    record_size: int
    shard_scopes: list[str]
    router_boundaries: list[int] = field(default_factory=list)
    super_label: bytes = b"SUPR"
    data_label: bytes = b"DATA"
    format_version: int = MANIFEST_VERSION

    # -- router ----------------------------------------------------------

    @classmethod
    def describe_router(cls, router: ShardRouter) -> tuple[str, list[int]]:
        """The (kind, boundaries) pair that reconstructs ``router``."""
        if isinstance(router, RangeRouter):
            return "range", list(router.boundaries)
        if isinstance(router, HashRouter):
            return "hash", []
        raise StorageError(
            f"router {type(router).__name__} cannot be recorded in a manifest"
        )

    def build_router(self) -> ShardRouter:
        """Reconstruct the recorded router, bit-for-bit."""
        if self.router_kind == "hash":
            return HashRouter(self.num_shards)
        if self.router_kind == "range":
            router = RangeRouter(self.router_boundaries)
            if router.num_shards != self.num_shards:
                raise PlatterFormatError(
                    f"manifest records {self.num_shards} shards but "
                    f"{len(self.router_boundaries)} range boundaries "
                    f"(a range router over N shards has N-1)"
                )
            return router
        raise PlatterFormatError(
            f"manifest records unknown router kind {self.router_kind!r}"
        )

    # -- plain serialisation ---------------------------------------------

    def to_bytes(self) -> bytes:
        """Magic + version + tagged length-prefixed values + CRC-32."""
        entries: list[tuple[int, bytes]] = [
            (_TAG_NUM_SHARDS, struct.pack("<I", self.num_shards)),
            (_TAG_ROUTER_KIND, self.router_kind.encode("utf-8")),
            (_TAG_BLOCK_SIZE, struct.pack("<I", self.block_size)),
            (_TAG_RECORD_SIZE, struct.pack("<I", self.record_size)),
            (_TAG_SUPER_LABEL, self.super_label),
            (_TAG_DATA_LABEL, self.data_label),
        ]
        entries.extend(
            (_TAG_BOUNDARY, struct.pack("<q", b)) for b in self.router_boundaries
        )
        entries.extend(
            (_TAG_SHARD_SCOPE, scope.encode("utf-8")) for scope in self.shard_scopes
        )
        parts = [MANIFEST_MAGIC, struct.pack("<HI", self.format_version, len(entries))]
        for tag, payload in entries:
            parts.append(_ENTRY.pack(tag, len(payload)))
            parts.append(payload)
        body = b"".join(parts)
        return body + struct.pack("<I", zlib.crc32(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ClusterManifest":
        if len(raw) < 18 or raw[:8] != MANIFEST_MAGIC:
            raise PlatterFormatError(
                "manifest magic mismatch: wrong base secret or not a manifest"
            )
        (crc,) = struct.unpack("<I", raw[-4:])
        if zlib.crc32(raw[:-4]) != crc:
            raise PlatterFormatError("manifest checksum mismatch")
        version, count = struct.unpack_from("<HI", raw, 8)
        if version != MANIFEST_VERSION:
            raise PlatterFormatError(
                f"manifest format version {version} not supported"
            )
        values: dict[int, bytes] = {}
        boundaries: list[int] = []
        scopes: list[str] = []
        offset = 14
        for _ in range(count):
            tag, length = _ENTRY.unpack_from(raw, offset)
            offset += _ENTRY.size
            payload = raw[offset : offset + length]
            if len(payload) != length:
                raise PlatterFormatError("manifest entry truncated")
            offset += length
            if tag == _TAG_BOUNDARY:
                boundaries.append(struct.unpack("<q", payload)[0])
            elif tag == _TAG_SHARD_SCOPE:
                scopes.append(payload.decode("utf-8"))
            else:
                values[tag] = payload  # unknown tags are skipped, forward-compat
        try:
            manifest = cls(
                num_shards=struct.unpack("<I", values[_TAG_NUM_SHARDS])[0],
                router_kind=values[_TAG_ROUTER_KIND].decode("utf-8"),
                block_size=struct.unpack("<I", values[_TAG_BLOCK_SIZE])[0],
                record_size=struct.unpack("<I", values[_TAG_RECORD_SIZE])[0],
                shard_scopes=scopes,
                router_boundaries=boundaries,
                super_label=values[_TAG_SUPER_LABEL],
                data_label=values[_TAG_DATA_LABEL],
                format_version=version,
            )
        except KeyError as exc:
            raise PlatterFormatError(f"manifest missing tag {exc}") from None
        if len(manifest.shard_scopes) != manifest.num_shards:
            raise PlatterFormatError(
                f"manifest records {manifest.num_shards} shards but "
                f"{len(manifest.shard_scopes)} scope names"
            )
        return manifest

    # -- enciphered form (what the backend stores) -----------------------

    def encipher(self, super_key: bytes) -> bytes:
        return _manifest_cipher(super_key).encrypt(self.to_bytes())

    @classmethod
    def decipher(cls, blob: bytes, super_key: bytes) -> "ClusterManifest":
        try:
            plain = _manifest_cipher(super_key).decrypt(blob)
        except CryptoError as exc:
            raise PlatterFormatError(
                f"manifest does not decipher: {exc}"
            ) from exc
        return cls.from_bytes(plain)
