"""Per-shard health tracking: healthy -> degraded -> quarantined.

The cluster's graceful-degradation plane.  Every shard gets a tiny
state machine fed by the outcomes of the operations that touch it:

* ``healthy`` -- the steady state.  A few *consecutive* transient
  failures (injected I/O errors, worker deaths absorbed by respawn)
  push the shard to ``degraded``.
* ``degraded`` -- still serving, but on notice.  A streak of successes
  recovers it to ``healthy``; continued failures, a permanent device
  error, or an exhausted worker-respawn budget push it to
  ``quarantined``.
* ``quarantined`` -- out of service.  Cluster operations that need the
  shard fail fast with :class:`~repro.exceptions.ShardUnavailableError`;
  read fan-outs opted into ``degraded_reads=True`` skip it and return a
  :class:`PartialResult` naming exactly which shards are missing.
  Quarantine is sticky until an operator calls :meth:`ClusterHealth.
  revive` -- automatic unquarantine would turn a dying device into a
  flapping one.

All transitions and counters are rolled up by :meth:`ClusterHealth.
snapshot` into the ``health`` field of :class:`~repro.cluster.stats.
ClusterStats`, alongside the executor's supervision counters, so a
chaos test can assert the observed schedule exactly.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

#: executor supervision counters mirrored into the health snapshot;
#: zeros when the cluster runs without a process executor
WORKER_FIELDS = (
    "worker_deaths",
    "op_timeouts",
    "respawns",
    "op_retries",
    "heartbeats",
)


class PartialResult(list):
    """A list of results that may be missing quarantined shards' share.

    Behaves exactly like the list it subclasses (callers that never opt
    into degraded reads keep seeing plain, complete lists), plus an
    explicit completeness marker: ``complete`` is False when at least
    one shard's contribution is absent, and ``missing_shards`` names
    which.
    """

    __slots__ = ("complete", "missing_shards")

    def __init__(self, items=(), complete: bool = True,
                 missing_shards: Iterable[int] = ()) -> None:
        super().__init__(items)
        self.missing_shards = tuple(missing_shards)
        self.complete = complete and not self.missing_shards


class _ShardHealth:
    """One shard's state machine and lifetime counters."""

    __slots__ = (
        "state", "reason", "consec_failures", "consec_successes",
        "transient_failures", "permanent_failures", "worker_losses",
        "times_degraded", "times_quarantined",
    )

    def __init__(self) -> None:
        self.state = HEALTHY
        self.reason = ""
        self.consec_failures = 0
        self.consec_successes = 0
        self.transient_failures = 0
        self.permanent_failures = 0
        self.worker_losses = 0
        self.times_degraded = 0
        self.times_quarantined = 0

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.state,
            "reason": self.reason,
            "transient_failures": self.transient_failures,
            "permanent_failures": self.permanent_failures,
            "worker_losses": self.worker_losses,
            "times_degraded": self.times_degraded,
            "times_quarantined": self.times_quarantined,
        }


class ClusterHealth:
    """Thread-safe rollup of every shard's health state machine.

    ``degrade_after`` consecutive failures mark a shard degraded;
    ``quarantine_after`` consecutive failures (or any permanent error)
    quarantine it; ``recover_after`` consecutive successes bring a
    degraded shard back.  The fan-out threads record outcomes
    concurrently, so every transition happens under one lock -- with a
    lock-free fast path for the overwhelmingly common case of a success
    on a shard with a clean slate.
    """

    def __init__(
        self,
        num_shards: int,
        degrade_after: int = 3,
        recover_after: int = 2,
        quarantine_after: int = 6,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a cluster has at least one shard")
        self.degrade_after = degrade_after
        self.recover_after = recover_after
        self.quarantine_after = quarantine_after
        self._lock = threading.Lock()
        self._shards = [_ShardHealth() for _ in range(num_shards)]
        # plain-bool fast path: False means "healthy with no streak to
        # update", so record_success can return without the lock
        self._dirty = [False] * num_shards
        self.degraded_reads_served = 0

    # -- event intake ----------------------------------------------------

    def record_success(self, index: int) -> None:
        if not self._dirty[index]:
            return
        with self._lock:
            shard = self._shards[index]
            shard.consec_failures = 0
            if shard.state == QUARANTINED:
                return  # only revive() exits quarantine
            shard.consec_successes += 1
            if shard.state == DEGRADED and (
                shard.consec_successes >= self.recover_after
            ):
                shard.state = HEALTHY
                shard.reason = ""
            if shard.state == HEALTHY:
                self._dirty[index] = False

    def record_failure(self, index: int, reason: str = "") -> None:
        """A transient failure (injected I/O error, flaky op) on the shard."""
        with self._lock:
            shard = self._shards[index]
            shard.transient_failures += 1
            self._record_failure_locked(index, shard, reason)

    def record_worker_loss(self, index: int, reason: str = "") -> None:
        """The shard's process worker died or hung; the parent absorbed it."""
        with self._lock:
            shard = self._shards[index]
            shard.worker_losses += 1
            self._record_failure_locked(index, shard, reason)

    def _record_failure_locked(self, index: int, shard: _ShardHealth,
                               reason: str) -> None:
        self._dirty[index] = True
        shard.consec_successes = 0
        shard.consec_failures += 1
        if shard.state == QUARANTINED:
            return
        if shard.consec_failures >= self.quarantine_after:
            shard.state = QUARANTINED
            shard.reason = reason or (
                f"{shard.consec_failures} consecutive failures"
            )
            shard.times_quarantined += 1
        elif shard.state == HEALTHY and (
            shard.consec_failures >= self.degrade_after
        ):
            shard.state = DEGRADED
            shard.reason = reason or (
                f"{shard.consec_failures} consecutive failures"
            )
            shard.times_degraded += 1

    def record_permanent(self, index: int, reason: str = "") -> None:
        """A permanent device failure: straight to quarantine."""
        with self._lock:
            shard = self._shards[index]
            shard.permanent_failures += 1
            self._dirty[index] = True
            shard.consec_successes = 0
            shard.consec_failures += 1
            if shard.state != QUARANTINED:
                shard.state = QUARANTINED
                shard.reason = reason or "permanent device failure"
                shard.times_quarantined += 1

    def quarantine(self, index: int, reason: str = "") -> None:
        """Administratively take a shard out of service."""
        with self._lock:
            shard = self._shards[index]
            self._dirty[index] = True
            if shard.state != QUARANTINED:
                shard.state = QUARANTINED
                shard.reason = reason or "quarantined by operator"
                shard.times_quarantined += 1

    def revive(self, index: int) -> None:
        """Operator override: return a shard to service with a clean slate."""
        with self._lock:
            shard = self._shards[index]
            shard.state = HEALTHY
            shard.reason = ""
            shard.consec_failures = 0
            shard.consec_successes = 0
            self._dirty[index] = False

    def record_degraded_read(self) -> None:
        with self._lock:
            self.degraded_reads_served += 1

    # -- queries ---------------------------------------------------------

    def state(self, index: int) -> str:
        with self._lock:
            return self._shards[index].state

    def reason(self, index: int) -> str:
        with self._lock:
            return self._shards[index].reason

    def is_quarantined(self, index: int) -> bool:
        if not self._dirty[index]:
            return False
        with self._lock:
            return self._shards[index].state == QUARANTINED

    def partition(self, shard_ids: Sequence[int]) -> tuple[list[int], list[int]]:
        """Split ids into (serviceable, quarantined), preserving order."""
        available: list[int] = []
        quarantined: list[int] = []
        for index in shard_ids:
            (quarantined if self.is_quarantined(index) else available).append(index)
        return available, quarantined

    def snapshot(self, worker: dict[str, int] | None = None) -> dict[str, object]:
        """The mergeless rollup surfaced as ``ClusterStats.health``."""
        with self._lock:
            per_shard = [shard.snapshot() for shard in self._shards]
            served = self.degraded_reads_served
        states = {HEALTHY: 0, DEGRADED: 0, QUARANTINED: 0}
        for entry in per_shard:
            states[entry["state"]] += 1
        worker_counters = {field: 0 for field in WORKER_FIELDS}
        if worker:
            for field in WORKER_FIELDS:
                worker_counters[field] = worker.get(field, 0)
        return {
            "states": states,
            "per_shard": per_shard,
            "worker": worker_counters,
            "degraded_reads_served": served,
        }
