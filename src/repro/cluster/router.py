"""Key-to-shard routing strategies for the sharded enciphered database.

A router is a pure, deterministic function from plaintext search keys to
shard indices -- it must survive process restarts (reopen) bit-for-bit,
so :class:`HashRouter` uses a fixed integer mixer rather than Python's
``hash``.  Routing happens on the *plaintext* key, inside the trusted
boundary: what reaches each shard's disks is still only the disguised
key and the encrypted pointers, so the router leaks nothing the paper's
model does not already concede.

Two strategies:

* :class:`HashRouter` -- a 64-bit avalanche mix (splitmix64 finaliser)
  modulo the shard count.  Spreads any workload evenly, but a range
  query must consult every shard.
* :class:`RangeRouter` -- contiguous key sub-ranges per shard (the
  partition-aware layout of the bitmap-join-index configuration work in
  PAPERS.md).  Range queries touch only the shards whose sub-range
  overlaps, which is where the cluster's range-query speedup comes from
  (benchmark C8).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod

from repro.exceptions import StorageError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The splitmix64 finaliser: a fixed, process-independent mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ShardRouter(ABC):
    """Deterministic assignment of search keys to shard indices."""

    #: Human-readable strategy name (used in benchmark tables).
    name: str = "abstract"

    #: True iff :meth:`shard_for` is monotone non-decreasing in the key,
    #: i.e. each shard owns one contiguous key interval.  Lets placement
    #: validation check only each shard's min and max key instead of a
    #: full scan.
    monotonic: bool = False

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise StorageError(f"a cluster needs at least 1 shard, got {num_shards}")
        self.num_shards = num_shards

    @abstractmethod
    def shard_for(self, key: int) -> int:
        """The shard index ``key`` lives on (``0 <= index < num_shards``)."""

    def shards_for_range(self, lo: int, hi: int) -> list[int]:
        """Shards that may hold keys in ``[lo, hi]`` (default: all)."""
        if lo > hi:
            return []
        return list(range(self.num_shards))

    def partition(self, items, key=None) -> list[list]:
        """Group ``items`` by shard, preserving each shard's arrival order.

        ``key`` extracts the routing key from an item (identity by
        default, so a plain key list routes as-is); ``bulk_load`` routes
        ``(key, record)`` pairs and ``get_many`` routes
        ``(position, key)`` pairs through the same loop.
        """
        groups: list[list] = [[] for _ in range(self.num_shards)]
        for item in items:
            routing_key = item if key is None else key(item)
            groups[self.shard_for(routing_key)].append(item)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} shards={self.num_shards}>"


class HashRouter(ShardRouter):
    """Uniform spreading via a fixed 64-bit mix; range queries fan out."""

    name = "hash"

    def shard_for(self, key: int) -> int:
        return _splitmix64(key & _MASK64) % self.num_shards


class RangeRouter(ShardRouter):
    """Contiguous key sub-ranges per shard; range queries prune.

    Parameters
    ----------
    boundaries:
        Strictly increasing split points; shard ``i`` holds keys in
        ``[boundaries[i-1], boundaries[i])`` (first shard unbounded
        below, last unbounded above).  ``num_shards`` is
        ``len(boundaries) + 1``.
    """

    name = "range"
    monotonic = True

    def __init__(self, boundaries: list[int]) -> None:
        if any(a >= b for a, b in zip(boundaries, boundaries[1:])):
            raise StorageError(f"boundaries must strictly increase: {boundaries}")
        super().__init__(len(boundaries) + 1)
        self.boundaries = list(boundaries)

    @classmethod
    def uniform(cls, num_shards: int, key_universe: range) -> "RangeRouter":
        """Equal-width sub-ranges over ``key_universe``.

        The universe is the substitution scheme's
        :meth:`~repro.substitution.base.KeySubstitution.key_universe`, so
        a cluster can derive its default range layout from the disguise
        it was built with.
        """
        if num_shards < 1:
            raise StorageError(f"a cluster needs at least 1 shard, got {num_shards}")
        span = len(key_universe)
        if num_shards > 1 and span < num_shards:
            raise StorageError(
                f"universe of {span} keys cannot split into {num_shards} ranges"
            )
        width = span / num_shards
        boundaries = [
            key_universe.start + round(i * width) for i in range(1, num_shards)
        ]
        return cls(boundaries)

    def shard_for(self, key: int) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def shards_for_range(self, lo: int, hi: int) -> list[int]:
        if lo > hi:
            return []
        return list(range(self.shard_for(lo), self.shard_for(hi) + 1))
