"""The sharded enciphered database: N private databases behind one API.

Each shard is a complete :class:`~repro.core.database.EncipheredDatabase`
-- its own node disk, record store, substitution instance and
independently derived superblock/data keys -- so compromise of one
shard's secrets opens exactly one shard, and block-frequency analysis
(the A3/C5 attacker) cannot correlate blocks *across* shards: the same
plaintext key would be disguised differently and enciphered under
different keys on every shard.

Routing happens on plaintext keys inside the trusted boundary (see
:mod:`repro.cluster.router`).  Cross-shard operations -- ``range_search``
fan-out, ``bulk_load`` partitioning, ``get_many`` batch reads -- run on a
pluggable executor backend (``executor=``):

* ``"threads"`` (default) -- a shard-count-bounded thread pool;
  per-shard reader--writer locks let parallel readers proceed while
  each shard serialises its writers.  Overlaps I/O, but pure-Python
  cryptography serialises on the GIL (benchmark C8).
* ``"processes"`` -- one worker process per shard (see
  :mod:`repro.cluster.executor`): each worker rebuilds its shard from a
  picklable spec and runs the fan-out's cryptography on its own
  interpreter, which is what turns the shorter critical path into
  wall-clock speedup on multi-core hardware (benchmark C10).  Requires
  module-level (picklable) factories.  Single-key operations and
  transactions stay on the calling process; worker replicas are
  re-synced automatically after any cluster-level mutation.
* ``"serial"`` -- a plain loop on the calling thread, the baseline the
  benchmarks compare against.

Key derivation
--------------

Per-shard secrets are derived from one base secret with the DES block
cipher as a one-way-ish KDF: shard ``i``'s superblock key is
``DES(base)(label || i)`` and its record-store key likewise under a
second label.  Distinct labels and indices give pairwise-distinct shard
keys (benchmark C8 verifies no block collisions across shards); the
operator still stores only the base secrets plus each shard's
substitution parameters.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, contextmanager
from typing import Callable, Iterable, Iterator, Sequence

from repro.cluster.executor import ProcessShardExecutor, UncommittedShardState
from repro.cluster.health import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    ClusterHealth,
    PartialResult,
)
from repro.cluster.manifest import ClusterManifest
from repro.cluster.router import HashRouter, RangeRouter, ShardRouter
from repro.cluster.stats import ClusterStats, merge_counter_dicts
from repro.core.database import EncipheredDatabase
from repro.core.records import RecordStore
from repro.crypto.base import IntegerCipher
from repro.crypto.des import DES
from repro.exceptions import (
    BTreeError,
    DuplicateKeyError,
    PermanentIOError,
    ShardUnavailableError,
    StorageError,
    TransientIOError,
    WorkerCrashError,
)
from repro.obs import ObsConfig
from repro.storage.backend import StorageBackend
from repro.storage.device import BlockDevice
from repro.substitution.base import KeySubstitution

# the single-database defaults, reused as the cluster's base secrets
_DEFAULT_SUPER_KEY = b"\x5b\xad\xc0\xde\x5b\xad\xc0\xde"
_DEFAULT_DATA_KEY = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1"

_SUPER_LABEL = b"SUPR"
_DATA_LABEL = b"DATA"

#: numeric encoding for the per-shard ``health.state`` gauge
_HEALTH_GAUGE = {HEALTHY: 0, DEGRADED: 1, QUARANTINED: 2}


def derive_shard_key(base_key: bytes, label: bytes, shard_index: int) -> bytes:
    """Derive shard ``shard_index``'s 8-byte key from a base secret."""
    block = label[:4].ljust(4, b"\x00") + shard_index.to_bytes(4, "big")
    return DES(base_key).encrypt_block(block)


def _resolve_router(
    router: ShardRouter | str,
    num_shards: int,
    substitution: KeySubstitution,
) -> ShardRouter:
    """Accept a router instance or the strategy names ``hash``/``range``."""
    if isinstance(router, ShardRouter):
        if router.num_shards != num_shards:
            raise StorageError(
                f"router covers {router.num_shards} shards, cluster has {num_shards}"
            )
        return router
    if router == "hash":
        return HashRouter(num_shards)
    if router == "range":
        return RangeRouter.uniform(num_shards, substitution.key_universe())
    raise StorageError(f"unknown routing strategy {router!r}")


class ShardedEncipheredDatabase:
    """Horizontal partitioning of :class:`EncipheredDatabase` over N shards.

    Build with :meth:`create` (fresh disks) or :meth:`reopen` (from the
    per-shard disks and secrets alone).  The factories receive the shard
    index and must return *independent* instances -- in particular each
    shard should get its own substitution secret (e.g. a different oval
    multiplier), which is what makes cross-shard frequency analysis
    strictly harder than against one database.
    """

    _EXECUTORS = ("serial", "threads", "processes")

    def __init__(
        self,
        shards: Sequence[EncipheredDatabase],
        router: ShardRouter,
        max_workers: int | None = None,
        executor: str = "threads",
        shard_factories: tuple | None = None,
        delta_sync: bool = True,
        offload_single_shard: bool = False,
        degraded_reads: bool = False,
        op_deadline_s: float | None = None,
    ) -> None:
        if not shards:
            raise StorageError("a cluster needs at least one shard")
        if router.num_shards != len(shards):
            raise StorageError(
                f"router covers {router.num_shards} shards, got {len(shards)}"
            )
        if executor not in self._EXECUTORS:
            raise StorageError(
                f"executor must be one of {self._EXECUTORS}, got {executor!r}"
            )
        if executor == "processes" and shard_factories is None:
            raise StorageError(
                "executor='processes' needs the shard factories to rebuild "
                "shards in workers; construct the cluster via create()/reopen()"
            )
        self.shards = list(shards)
        self.router = router
        self.executor = executor
        self._shard_factories = shard_factories
        self._max_workers = max_workers or len(self.shards)
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._txn_thread: int | None = None
        # Process-backend replica consistency: each cluster-level
        # mutation bumps the touched shards' epochs (sealing the shard's
        # change journals under the new number), and a worker whose
        # replica predates the epoch is caught up -- incrementally when
        # the journals can serve a delta, by full re-ship otherwise.
        self._shard_epochs = [0] * len(self.shards)
        # one mutex per shard making "seal journals, then publish the
        # new epoch" atomic against sibling writers (see _note_writes)
        self._epoch_locks = [threading.Lock() for _ in self.shards]
        self._delta_sync = delta_sync
        #: With the process executor, ship single-shard batches to a
        #: worker too (default off: the historical gate required >1
        #: shard).  Worth enabling when the parent thread's own work --
        #: routing, serving reads -- is the bottleneck and a batch's
        #: cipher/tree cost dwarfs the delta shipping cost; benchmark
        #: C15 records the measured parent-thread relief either way.
        self.offload_single_shard = offload_single_shard
        self._procs: ProcessShardExecutor | None = None
        #: Fault-tolerance plane (PR 10): one health state machine per
        #: shard, fed by operation outcomes.  Quarantined shards make
        #: cluster operations fail fast with ShardUnavailableError --
        #: unless ``degraded_reads`` opts read fan-outs into skipping
        #: them and returning a :class:`PartialResult` that names the
        #: missing shards.
        self.health = ClusterHealth(len(self.shards))
        self.degraded_reads = degraded_reads
        #: Per-op deadline handed to the process executor's result
        #: pipes; ``None`` waits forever (the pre-supervision default).
        self.op_deadline_s = op_deadline_s
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(
        cls,
        substitution_factory: Callable[[int], KeySubstitution],
        pointer_cipher_factory: Callable[[int], IntegerCipher],
        *,
        num_shards: int = 4,
        router: ShardRouter | str = "hash",
        block_size: int = 512,
        min_degree: int = 4,
        super_key: bytes = _DEFAULT_SUPER_KEY,
        data_key: bytes = _DEFAULT_DATA_KEY,
        record_size: int = 120,
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        max_workers: int | None = None,
        record_cache_blocks: int = 0,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        executor: str = "threads",
        delta_sync: bool = True,
        offload_single_shard: bool = False,
        degraded_reads: bool = False,
        op_deadline_s: float | None = None,
        backend: StorageBackend | None = None,
        observability: ObsConfig | None = None,
    ) -> "ShardedEncipheredDatabase":
        """Initialise ``num_shards`` fresh shards with derived secrets.

        ``record_cache_blocks``/``decoded_node_cache_blocks`` (and the
        byte-budget variant ``decoded_node_cache_bytes``) size each
        shard's *private* plaintext read caches (defaults off).  Private
        caches give the fan-out per-shard cache locality: each worker
        warms and hits only the shard it is scanning, with no
        cross-shard invalidation traffic and no shared-cache lock.

        ``executor`` selects the fan-out backend (``"serial"``,
        ``"threads"``, ``"processes"``); the process backend requires
        both factories to be picklable module-level functions.
        ``delta_sync`` (default on) lets stale worker replicas catch up
        incrementally -- only journal-proven changed blocks ship;
        ``False`` restores the full-state re-ship on every parent write,
        which benchmark C11 uses as its baseline arm.

        ``backend`` places every shard's devices on a
        :class:`~repro.storage.backend.StorageBackend`: shard ``i``
        lives in the scoped child backend ``shard-{i:03d}``, and an
        enciphered :class:`~repro.cluster.manifest.ClusterManifest`
        (shard count, router kind/boundaries, key-derivation labels,
        geometry, scope names) is saved to the backend, so a later
        :meth:`reopen_from_manifest` needs only the backend and the base
        secrets.  ``None`` keeps the historical in-memory devices (and
        writes no manifest).
        """
        substitutions = [substitution_factory(i) for i in range(num_shards)]
        scopes = [f"shard-{i:03d}" for i in range(num_shards)]
        shards = [
            EncipheredDatabase.create(
                substitutions[i],
                pointer_cipher_factory(i),
                block_size=block_size,
                min_degree=min_degree,
                super_key=derive_shard_key(super_key, _SUPER_LABEL, i),
                data_key=derive_shard_key(data_key, _DATA_LABEL, i),
                record_size=record_size,
                cache_blocks=cache_blocks,
                write_back=write_back,
                autocommit=autocommit,
                record_cache_blocks=record_cache_blocks,
                decoded_node_cache_blocks=decoded_node_cache_blocks,
                decoded_node_cache_bytes=decoded_node_cache_bytes,
                backend=backend.scoped(scopes[i]) if backend is not None else None,
                observability=observability,
            )
            for i in range(num_shards)
        ]
        resolved = _resolve_router(router, num_shards, substitutions[0])
        if backend is not None:
            kind, boundaries = ClusterManifest.describe_router(resolved)
            manifest = ClusterManifest(
                num_shards=num_shards,
                router_kind=kind,
                router_boundaries=boundaries,
                block_size=block_size,
                record_size=record_size,
                shard_scopes=scopes,
                super_label=_SUPER_LABEL,
                data_label=_DATA_LABEL,
            )
            backend.save_manifest(manifest.encipher(super_key))
        return cls(
            shards,
            resolved,
            max_workers=max_workers,
            executor=executor,
            shard_factories=(substitution_factory, pointer_cipher_factory),
            delta_sync=delta_sync,
            offload_single_shard=offload_single_shard,
            degraded_reads=degraded_reads,
            op_deadline_s=op_deadline_s,
        )

    @classmethod
    def reopen(
        cls,
        substitution_factory: Callable[[int], KeySubstitution],
        pointer_cipher_factory: Callable[[int], IntegerCipher],
        parts: Sequence[tuple[BlockDevice, RecordStore]],
        *,
        router: ShardRouter | str = "hash",
        super_key: bytes = _DEFAULT_SUPER_KEY,
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        max_workers: int | None = None,
        record_cache_blocks: int | None = None,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        validate_routing: bool = True,
        executor: str = "threads",
        delta_sync: bool = True,
        offload_single_shard: bool = False,
        degraded_reads: bool = False,
        op_deadline_s: float | None = None,
        observability: ObsConfig | None = None,
    ) -> "ShardedEncipheredDatabase":
        """Rebuild a cluster from each shard's platters and the secrets.

        ``parts`` is what :meth:`shard_parts` returned for the original
        cluster (one ``(node disk, record store)`` pair per shard, in
        shard order); every shard's superblock is authenticated under its
        re-derived key on the way up, and every cache starts cold.  As
        with :meth:`EncipheredDatabase.reopen`, each record store keeps
        its configured cache capacity unless ``record_cache_blocks``
        overrides it (``None`` keeps, ``0`` forces off), while the
        rebuilt pagers take ``decoded_node_cache_blocks`` directly.

        Unless ``validate_routing=False``, the supplied ``router`` is
        then checked against the actual key placement: every key on
        every shard must route back to that shard.  A cluster reopened
        with the wrong strategy, the wrong boundaries, or parts out of
        order would otherwise *silently mis-route* -- point reads
        missing keys that are on the platters, range routers skipping
        populated shards -- so a mismatch fails fast with
        :class:`~repro.exceptions.StorageError` instead.
        """
        substitutions = [substitution_factory(i) for i in range(len(parts))]
        shards = [
            EncipheredDatabase.reopen(
                substitutions[i],
                pointer_cipher_factory(i),
                disk,
                records,
                super_key=derive_shard_key(super_key, _SUPER_LABEL, i),
                cache_blocks=cache_blocks,
                write_back=write_back,
                autocommit=autocommit,
                record_cache_blocks=record_cache_blocks,
                decoded_node_cache_blocks=decoded_node_cache_blocks,
                decoded_node_cache_bytes=decoded_node_cache_bytes,
                observability=observability,
            )
            for i, (disk, records) in enumerate(parts)
        ]
        resolved = _resolve_router(router, len(parts), substitutions[0])
        if validate_routing:
            cls._validate_routing(shards, resolved)
            for shard in shards:
                shard._make_cold()  # the validation walk must not pre-warm
        return cls(
            shards,
            resolved,
            max_workers=max_workers,
            executor=executor,
            shard_factories=(substitution_factory, pointer_cipher_factory),
            delta_sync=delta_sync,
            offload_single_shard=offload_single_shard,
            degraded_reads=degraded_reads,
            op_deadline_s=op_deadline_s,
        )

    @classmethod
    def reopen_from_manifest(
        cls,
        substitution_factory: Callable[[int], KeySubstitution],
        pointer_cipher_factory: Callable[[int], IntegerCipher],
        backend: StorageBackend,
        *,
        super_key: bytes = _DEFAULT_SUPER_KEY,
        data_key: bytes = _DEFAULT_DATA_KEY,
        cache_blocks: int = 16,
        write_back: bool = False,
        autocommit: bool = True,
        max_workers: int | None = None,
        record_cache_blocks: int = 0,
        decoded_node_cache_blocks: int = 0,
        decoded_node_cache_bytes: int = 0,
        validate_routing: bool = True,
        executor: str = "threads",
        delta_sync: bool = True,
        offload_single_shard: bool = False,
        degraded_reads: bool = False,
        op_deadline_s: float | None = None,
        observability: ObsConfig | None = None,
    ) -> "ShardedEncipheredDatabase":
        """Rebuild a cluster from its backend and the base secrets alone.

        The self-describing reopen: the shard count, router
        kind/boundaries, key-derivation labels, geometry and per-shard
        scope names all come from the backend's enciphered manifest --
        nothing about the cluster's shape is trusted from the caller, so
        a stale deployment script cannot silently mis-route.  Each
        shard reopens from its scoped backend via
        :meth:`EncipheredDatabase.reopen_from_backend` (replaying any
        crash-interrupted WAL epochs and rescanning record metadata on
        the way), and unless ``validate_routing=False`` the
        reconstructed router is still checked against the actual key
        placement -- the manifest authenticates the *configuration*,
        the validation cross-checks it against the *data*.
        """
        manifest = ClusterManifest.decipher(backend.load_manifest(), super_key)
        substitutions = [
            substitution_factory(i) for i in range(manifest.num_shards)
        ]
        shards = [
            EncipheredDatabase.reopen_from_backend(
                substitutions[i],
                pointer_cipher_factory(i),
                backend.scoped(manifest.shard_scopes[i]),
                super_key=derive_shard_key(super_key, manifest.super_label, i),
                data_key=derive_shard_key(data_key, manifest.data_label, i),
                block_size=manifest.block_size,
                record_size=manifest.record_size,
                cache_blocks=cache_blocks,
                write_back=write_back,
                autocommit=autocommit,
                record_cache_blocks=record_cache_blocks,
                decoded_node_cache_blocks=decoded_node_cache_blocks,
                decoded_node_cache_bytes=decoded_node_cache_bytes,
                observability=observability,
            )
            for i in range(manifest.num_shards)
        ]
        router = manifest.build_router()
        if validate_routing:
            cls._validate_routing(shards, router)
        for shard in shards:
            shard._make_cold()  # recovery/validation walks must not pre-warm
        return cls(
            shards,
            router,
            max_workers=max_workers,
            executor=executor,
            shard_factories=(substitution_factory, pointer_cipher_factory),
            delta_sync=delta_sync,
            offload_single_shard=offload_single_shard,
            degraded_reads=degraded_reads,
            op_deadline_s=op_deadline_s,
        )

    @staticmethod
    def _validate_routing(
        shards: Sequence[EncipheredDatabase], router: ShardRouter
    ) -> None:
        """Fail fast if ``router`` does not reproduce the key placement.

        A monotonic router (contiguous per-shard key intervals) is
        validated from each shard's min and max key alone -- two
        O(height) edge walks; if both endpoints route home, so does
        everything between them.  Non-monotonic routers (hash) need the
        full key walk, which -- like the tree walk ``reopen`` already
        performs to recover the key count -- bumps the read-side
        operation counters; benchmarks reset counters after reopen.
        """
        for index, shard in enumerate(shards):
            with shard.lock.read_locked():
                if router.monotonic:
                    endpoints = (shard.tree.min_key(), shard.tree.max_key())
                    keys = (k for k in endpoints if k is not None)
                else:
                    keys = (key for key, _ in shard.tree.items())
                for key in keys:
                    routed = router.shard_for(key)
                    if routed != index:
                        raise StorageError(
                            f"router mismatch: key {key} lives on shard "
                            f"{index} but the supplied {router.name!r} router "
                            f"sends it to shard {routed}; check the router "
                            f"kind/boundaries and the order of shard parts"
                        )

    def shard_parts(self) -> list[tuple[BlockDevice, RecordStore]]:
        """The durable state a later :meth:`reopen` needs, in shard order."""
        return [(shard.disk, shard.records) for shard in self.shards]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -- the thread pool -------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._executor

    def _process_pool(self) -> ProcessShardExecutor:
        with self._executor_lock:
            if self._procs is None:
                substitution_factory, pointer_cipher_factory = self._shard_factories
                self._procs = ProcessShardExecutor(
                    substitution_factory,
                    pointer_cipher_factory,
                    len(self.shards),
                    delta_sync=self._delta_sync,
                    op_deadline_s=self.op_deadline_s,
                )
            return self._procs

    def _process_map(self, op: str, shard_ids: Sequence[int], payloads: Sequence) -> list:
        return self._process_pool().map(
            op, shard_ids, payloads, self.shards, self._shard_epochs
        )

    def _use_processes(self, shard_ids: Sequence[int]) -> bool:
        """Worker processes pay off only for a true multi-shard fan-out.

        Single-shard work stays on this thread unless
        ``offload_single_shard`` opts it in; in-transaction work always
        stays, and so does any fan-out while a shard holds *uncommitted*
        state (dirty write-back pages or an open shard transaction):
        shipping a spec must never force a commit, and the in-process
        backends already serve uncommitted reads with the right
        semantics.
        """
        return (
            self.executor == "processes"
            and (len(shard_ids) > 1 or self.offload_single_shard)
            and threading.get_ident() != self._txn_thread
            and not any(
                shard.has_uncommitted_changes
                or shard.tree.pager.dirty_blocks
                or shard._in_txn
                for shard in self.shards
            )
        )

    def _note_writes(self, shard_ids: Iterable[int]) -> None:
        """Record that the listed shards' durable state changed.

        Bumping a shard's epoch and *sealing* its change journals under
        the new number are one operation: the sealed sets are what a
        later delta sync ships to a worker replica holding an older
        epoch.

        Inside this cluster's :meth:`transaction` the call is a no-op:
        nothing is committed yet, sealing would split the transaction's
        bytes across an epoch boundary, and the transaction's own exit
        seals exactly the shards whose committed bytes changed -- so a
        rolled-back scope full of batched writes still re-ships nothing.
        """
        if threading.get_ident() == self._txn_thread:
            return
        for shard_id in shard_ids:
            with self._epoch_locks[shard_id]:
                # seal BEFORE publishing the bump: a concurrent reader's
                # sync that observes the new epoch number must find the
                # epoch's changes already sealed, or it would ship an
                # empty delta stamped with a tree state the worker's
                # blocks cannot support.  The per-shard mutex also keeps
                # two racing writers from publishing the same epoch
                # number (each seal gets a distinct, ordered epoch).
                epoch = self._shard_epochs[shard_id] + 1
                self.shards[shard_id].seal_changes(epoch)
                self._shard_epochs[shard_id] = epoch

    def _note_changed_writes(self, shard_ids: Iterable[int]) -> None:
        """Like :meth:`_note_writes`, but only where bytes truly changed.

        The journals make "did committed platter bytes change?" cheap to
        answer, so rolled-back and no-op transactions skip the epoch
        bump entirely -- worker replicas stay valid and nothing
        re-ships.  (A rollback that freed record slots *did* change
        bytes and still bumps -- but only on the shards it touched.)
        """
        self._note_writes(
            [i for i in shard_ids if self.shards[i].has_unsealed_changes]
        )

    # -- fault tolerance (PR 10) -----------------------------------------

    def _unavailable(self, shard_id: int) -> ShardUnavailableError:
        reason = self.health.reason(shard_id) or "quarantined"
        return ShardUnavailableError(shard_id, reason)

    def _require_available(self, shard_ids: Iterable[int]) -> None:
        """Fail fast -- before any bytes move -- if a needed shard is out.

        Mutations call this over *every* shard their batch touches, so a
        batch never half-applies against a cluster with a known-dead
        member: the caller gets the typed error while all shards are
        still untouched (per-shard atomicity for the remaining failure
        modes is unchanged).
        """
        for shard_id in shard_ids:
            if self.health.is_quarantined(shard_id):
                raise self._unavailable(shard_id)

    def _serviceable(self, shard_ids: Sequence[int]) -> tuple[list[int], list[int]]:
        """Split a read fan-out's shards into (serving, skipped).

        Without ``degraded_reads`` a quarantined member makes the whole
        read fail fast; with it, the quarantined shards are returned as
        the ``skipped`` list and the caller serves a
        :class:`PartialResult` from the rest.
        """
        available, quarantined = self.health.partition(shard_ids)
        if quarantined and not self.degraded_reads:
            raise self._unavailable(quarantined[0])
        return available, quarantined

    def _on_shard(self, shard_id: int, fn: Callable[[], object]) -> object:
        """Run one shard-touching operation under health accounting.

        Success feeds the shard's recovery streak; an escaped
        :class:`TransientIOError` (the device retries are already
        exhausted by this point) feeds its failure streak; a
        :class:`PermanentIOError` quarantines it on the spot and
        resurfaces as the typed :class:`ShardUnavailableError`.
        Logical errors (duplicate key, key not found) pass through
        untouched -- they say nothing about the shard's hardware.
        """
        if self.health.is_quarantined(shard_id):
            raise self._unavailable(shard_id)
        try:
            result = fn()
        except PermanentIOError as exc:
            self.health.record_permanent(shard_id, str(exc))
            raise ShardUnavailableError(shard_id, str(exc)) from exc
        except TransientIOError as exc:
            self.health.record_failure(shard_id, str(exc))
            raise
        self.health.record_success(shard_id)
        return result

    def _note_worker_trouble(self, exc: BaseException, shard_ids: Sequence[int]) -> None:
        """A process-backend fan-out lost its worker(s); record and move on.

        Worker trouble is *not* shard trouble: the parent's copy of the
        shard is intact and the caller is about to serve the operation
        in-process, so the loss feeds the failure streak (degrading a
        shard whose worker keeps dying) without quarantining anything.
        """
        shard_id = getattr(exc, "shard_id", None)
        if shard_id is None or shard_id not in shard_ids:
            shard_id = shard_ids[0] if shard_ids else 0
        self.health.record_worker_loss(shard_id, str(exc))

    def close(self) -> None:
        """Commit every shard, release devices and worker threads/processes.

        On durable backends this closes every shard's platter files
        (after their final sync); on in-memory devices the close is a
        no-op and the cluster object remains usable, which existing
        callers rely on.  Worker replicas' record-block heat is
        harvested into the parent shards first, so the heat each shard
        persists on close covers every process that touched it.

        Idempotent, and hardened against a degraded cluster: a second
        call is a no-op, quarantined shards are skipped (their device
        already failed permanently -- syncing it again can only raise
        the error the quarantine recorded), and every shard's resources
        are released even when an earlier shard's final commit raises.
        The first non-quarantined shard's error still propagates after
        the cleanup finishes.
        """
        if self._closed:
            return
        self._closed = True
        first_error: BaseException | None = None
        try:
            self.commit()
        except BaseException as exc:
            first_error = exc
        if self._procs is not None:
            for i, shard in enumerate(self.shards):
                self._procs.harvest(i, shard)
        for i, shard in enumerate(self.shards):
            try:
                shard.close()
            except BaseException as exc:
                if first_error is None and not self.health.is_quarantined(i):
                    first_error = exc
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        if self._procs is not None:
            # keep the object: its harvested counters still feed stats()
            self._procs.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ShardedEncipheredDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _fan_out(self, fn: Callable[[int], object], shard_ids: Sequence[int]) -> list:
        """Run ``fn(shard_id)`` for every id, in parallel when it pays.

        Inside this cluster's :meth:`transaction` the calling thread owns
        every shard's *write* lock, which pool workers (different
        threads) could never acquire the read side of -- so the fan-out
        degrades to a serial loop on the calling thread instead of
        deadlocking the pool.

        Every task is awaited even when one errors (the first error is
        re-raised after the drain).  Callers' cleanup relies on this: a
        mutating fan-out (``put_many``, ``bulk_load``) seals the touched
        shards' change journals in a ``finally``, and sealing while a
        sibling shard's transaction is still running on a pool thread
        would split that shard's commit across an epoch boundary --
        stranding the post-seal bytes in the journal's open set, where
        no delta sync would ever ship them.
        """
        if (
            self.executor == "serial"
            or len(shard_ids) <= 1
            or threading.get_ident() == self._txn_thread
        ):
            return [fn(i) for i in shard_ids]
        futures = [self._pool().submit(fn, i) for i in shard_ids]
        results: list[object] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- single-key operations (routed, no fan-out) ----------------------

    def _shard(self, key: int) -> EncipheredDatabase:
        return self.shards[self.router.shard_for(key)]

    def insert(self, key: int, record: bytes) -> None:
        shard_id = self.router.shard_for(key)
        self._on_shard(shard_id, lambda: self.shards[shard_id].insert(key, record))
        self._note_writes((shard_id,))

    def search(self, key: int) -> bytes:
        shard_id = self.router.shard_for(key)
        return self._on_shard(shard_id, lambda: self.shards[shard_id].search(key))

    def get(self, key: int, default: bytes | None = None) -> bytes | None:
        shard_id = self.router.shard_for(key)
        return self._on_shard(
            shard_id, lambda: self.shards[shard_id].get(key, default)
        )

    def __contains__(self, key: int) -> bool:
        shard_id = self.router.shard_for(key)
        return self._on_shard(shard_id, lambda: key in self.shards[shard_id])

    def delete(self, key: int) -> None:
        shard_id = self.router.shard_for(key)
        self._on_shard(shard_id, lambda: self.shards[shard_id].delete(key))
        self._note_writes((shard_id,))

    # -- fanned-out operations -------------------------------------------

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        """All ``(key, record)`` pairs with ``lo <= key <= hi``, ascending.

        The router prunes the shard set (a :class:`RangeRouter` touches
        only overlapping sub-ranges); the surviving shards are queried in
        parallel and their sorted partial results merged.

        Quarantined shards make the read fail fast with
        :class:`~repro.exceptions.ShardUnavailableError` -- unless the
        cluster was built with ``degraded_reads=True``, in which case
        they are skipped and the merge comes back as a
        :class:`~repro.cluster.health.PartialResult` naming them.  A
        worker crash mid fan-out is absorbed: the executor already
        retried once against a fresh replica, and if that failed too the
        read is served by the parent's own (intact) shards in-process.
        """
        shard_ids = self.router.shards_for_range(lo, hi)
        serving, skipped = self._serviceable(shard_ids)
        partials = None
        if serving and self._use_processes(serving):
            try:
                partials = self._process_map(
                    "range_search", serving, [(lo, hi)] * len(serving)
                )
            except UncommittedShardState:
                partials = None  # racing writer left dirt: serve in-process
            except (WorkerCrashError, ShardUnavailableError) as exc:
                self._note_worker_trouble(exc, serving)
                partials = None  # workers are gone; the parent shards are not
        if partials is None:
            partials = self._fan_out(
                lambda i: self._on_shard(
                    i, lambda: self.shards[i].range_search(lo, hi)
                ),
                serving,
            )
        if len(partials) <= 1:
            merged = partials[0] if partials else []
        else:
            merged = sorted(
                (pair for partial in partials for pair in partial),
                key=lambda pair: pair[0],
            )
        if skipped:
            self.health.record_degraded_read()
            return PartialResult(merged, missing_shards=skipped)
        return merged

    def get_many(
        self, keys: Sequence[int], default: bytes | None = None
    ) -> list[bytes | None]:
        """Batch point lookups, fanned out by shard; aligned with ``keys``.

        Degradation mirrors :meth:`range_search`: quarantined shards
        fail the batch fast unless ``degraded_reads=True``, where their
        keys' positions keep ``default`` and the (still aligned) result
        comes back as a :class:`~repro.cluster.health.PartialResult`.
        """
        by_shard = self.router.partition(
            list(enumerate(keys)), key=lambda pk: pk[1]
        )
        out: list[bytes | None] = [default] * len(keys)
        touched = [i for i, group in enumerate(by_shard) if group]
        serving, skipped = self._serviceable(touched)

        def finish(values: list) -> list[bytes | None]:
            if skipped:
                self.health.record_degraded_read()
                return PartialResult(values, missing_shards=skipped)
            return values

        if serving and self._use_processes(serving):
            payloads = [
                ([key for _, key in by_shard[i]], default) for i in serving
            ]
            try:
                chunks = self._process_map("get_many", serving, payloads)
            except UncommittedShardState:
                chunks = None  # racing writer left dirt: serve in-process
            except (WorkerCrashError, ShardUnavailableError) as exc:
                self._note_worker_trouble(exc, serving)
                chunks = None  # workers are gone; the parent shards are not
            if chunks is not None:
                for shard_id, values in zip(serving, chunks):
                    for (position, _), record in zip(by_shard[shard_id], values):
                        out[position] = record
                return finish(out)

        def fetch(shard_id: int) -> list[tuple[int, bytes | None]]:
            shard = self.shards[shard_id]
            return self._on_shard(
                shard_id,
                lambda: [
                    (position, shard.get(key, default))
                    for position, key in by_shard[shard_id]
                ],
            )

        for chunk in self._fan_out(fetch, serving):
            for position, record in chunk:
                out[position] = record
        return finish(out)

    def bulk_load(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Partition ``(key, record)`` pairs by shard and load in parallel.

        Requires an empty cluster; duplicate keys are rejected before any
        shard is touched (each shard's own loader re-validates its
        slice).  A shard-level failure after that point leaves the other
        shards loaded -- cross-shard atomicity is an open item, not a
        promise.
        """
        if len(self):
            raise BTreeError("bulk_load requires an empty cluster")
        pairs = list(items)
        seen = sorted(key for key, _ in pairs)
        for left, right in zip(seen, seen[1:]):
            if left == right:
                raise DuplicateKeyError(right)
        partitions = self.router.partition(pairs, key=lambda kv: kv[0])
        loaded = [i for i, part in enumerate(partitions) if part]
        self._require_available(loaded)
        # The worker commits its replica to ship the state back, so the
        # process path is only equivalent when the parent would commit
        # too: an autocommit=False load must stay uncommitted (rollback-
        # able), which only the in-process backends preserve.
        if self._use_processes(loaded) and all(
            self.shards[i].autocommit for i in loaded
        ):
            try:
                self._process_bulk_load(loaded, partitions)
                return
            except UncommittedShardState:
                pass  # racing writer left dirt: load in-process instead
        try:
            self._fan_out(
                lambda i: self._on_shard(
                    i, lambda: self.shards[i].bulk_load(partitions[i])
                ),
                loaded,
            )
        finally:
            # in the finally: a *partial* failure already changed some
            # shards' durable state (cross-shard atomicity is documented
            # as open), and a worker replica shipped before the load
            # must not keep serving the pre-load state
            self._note_writes(loaded)

    def _process_bulk_load(self, loaded: Sequence[int], partitions: Sequence) -> None:
        """Build the per-shard trees in the workers, then adopt their state.

        Each worker loads its slice into its private replica and ships
        the resulting durable state back; the parent installs it into
        its shard objects (platters, slot metadata, tree metadata --
        a state transfer, no re-encryption) and re-baselines the
        worker's counters so the load's cipher operations are counted
        exactly once.
        """
        procs = self._process_pool()
        try:
            replies = self._process_map(
                "bulk_load", loaded, [partitions[i] for i in loaded]
            )
            for shard_id, (stats_after, tree_state, node_blocks, record_state) in zip(
                loaded, replies
            ):
                shard = self.shards[shard_id]
                with shard.lock.write_locked():
                    # the worker built from a snapshot of an *empty* shard
                    # (bulk_load's precondition); a write that raced in
                    # since would be silently clobbered by the install,
                    # so refuse it instead (checked under the shard lock,
                    # where every mutation updates tree.size)
                    if shard.tree.size != 0:
                        raise StorageError(
                            f"shard {shard_id} was mutated during a "
                            "process-backend bulk_load; nothing installed "
                            "for it, reload required"
                        )
                    shard.tree.pager.discard_dirty()
                    shard.tree.pager.clear_cache()
                    shard.disk.import_state(node_blocks)
                    shard.records.import_state(record_state)
                    shard.tree.restore_state(tree_state)
                    # the worker already holds exactly this state: bump
                    # the epoch and mark it shipped, so the next read
                    # skips the re-sync.  The install tainted the
                    # journals (wholesale import); sealing here
                    # re-checkpoints them at the new epoch, so later
                    # mutations ship as deltas.  Still under the shard
                    # write lock: the taint-then-checkpoint pair must
                    # not interleave with a racing writer's notes, or
                    # that writer's block ids would be discarded by the
                    # checkpoint while its epoch claims them shipped.
                    self._note_writes((shard_id,))
                    procs.epochs_sent[shard_id] = self._shard_epochs[shard_id]
                procs.rebase(shard_id, stats_after)
        except BaseException:
            # a sibling shard failed (or an install threw): workers that
            # already loaded their slice now diverge from the parent, so
            # force a re-ship before any of them serves again
            procs.invalidate(loaded)
            raise

    # -- batched mutations ------------------------------------------------

    def put_many(self, items: Iterable[tuple[int, bytes]]) -> int:
        """Insert a batch of ``(key, record)`` pairs, grouped per shard.

        Each shard receives its whole slice under **one** write-lock
        acquisition, one commit and one epoch bump
        (:meth:`EncipheredDatabase.put_many`), so a burst of k writes
        triggers one replica delta ship per touched shard instead of k
        re-syncs.  Shards are loaded in parallel on the thread fan-out;
        with the process executor, each shard's slice is *offloaded* to
        its owning worker -- the mutation executes in the worker (where
        its cipher plane runs on a separate interpreter) and the
        resulting :class:`~repro.storage.journal.ShardDelta` ships back
        for parent apply, so write-heavy workloads parallelise across
        shards like reads do.

        Atomicity is *per shard*: a failing slice (duplicate key,
        oversized record) rolls its own shard back, but sibling shards
        that already committed stay committed -- the same contract as
        :meth:`bulk_load`.  Returns the number of pairs inserted.
        """
        pairs = list(items)
        if not pairs:
            return 0
        partitions = self.router.partition(pairs, key=lambda kv: kv[0])
        touched = [i for i, part in enumerate(partitions) if part]
        self._require_available(touched)
        if self._offload_batch("put_many", touched, partitions):
            return len(pairs)
        try:
            self._fan_out(
                lambda i: self._on_shard(
                    i, lambda: self.shards[i].put_many(partitions[i])
                ),
                touched,
            )
        finally:
            # even on a partial failure: committed shards changed bytes
            # (bump + seal), the rolled-back shard bumps only if its
            # rollback left byte changes (freed record slots)
            self._note_changed_writes(touched)
        return len(pairs)

    def delete_many(self, keys: Iterable[int]) -> int:
        """Delete a batch of keys, grouped per shard (see :meth:`put_many`).

        A missing key raises :class:`~repro.exceptions.KeyNotFoundError`
        and rolls back that shard's whole slice; sibling shards are
        unaffected.  With the process executor the per-shard slices are
        offloaded to the owning workers like :meth:`put_many`'s.
        Returns the number of keys deleted.
        """
        key_list = list(keys)
        if not key_list:
            return 0
        partitions = self.router.partition(key_list, key=lambda k: k)
        touched = [i for i, part in enumerate(partitions) if part]
        self._require_available(touched)
        if self._offload_batch("delete_many", touched, partitions):
            return len(key_list)
        try:
            self._fan_out(
                lambda i: self._on_shard(
                    i, lambda: self.shards[i].delete_many(partitions[i])
                ),
                touched,
            )
        finally:
            self._note_changed_writes(touched)
        return len(key_list)

    def _offload_batch(
        self, op: str, touched: Sequence[int], partitions: Sequence
    ) -> bool:
        """Execute a batched mutation worker-side; True when handled.

        Each touched shard's slice runs in its owning process worker
        (synced to the parent's epoch first), and the worker ships back
        the delta its commit produced; the parent applies it under the
        shard's write lock -- a pure state transfer, so the batch's
        cipher work happened exactly once, in the worker.  Falls back to
        the parent-side fan-out (returns ``False``) when the process
        path is unavailable or unsafe: wrong executor, single-shard
        batch, inside a transaction, uncommitted state anywhere, a
        non-autocommit shard (the worker commits its replica, so
        offloading would break rollback-ability), or a racing writer
        surfacing :class:`UncommittedShardState` mid-sync.

        Per-shard atomicity matches the parent-side path: a failing
        slice raises after every successful sibling's delta is applied,
        and the failed shard's replica is re-shipped before reuse.
        """
        if not self._use_processes(touched) or not all(
            self.shards[i].autocommit for i in touched
        ):
            return False
        procs = self._process_pool()
        try:
            outcomes = procs.map_settled(
                op,
                touched,
                [partitions[i] for i in touched],
                self.shards,
                self._shard_epochs,
            )
        except UncommittedShardState:
            return False  # racing writer left dirt: mutate in-process
        except (WorkerCrashError, ShardUnavailableError) as exc:
            # a worker died (or exhausted its respawn budget) during the
            # sync/dispatch phase: no slice has been applied parent-side
            # yet, so the whole batch can still run in-process against
            # the parent's intact shards
            self._note_worker_trouble(exc, touched)
            return False
        first_error: BaseException | None = None
        for shard_id, (ok, value) in zip(touched, outcomes):
            if not ok and isinstance(value, WorkerCrashError):
                # the worker died mid-slice.  Its replica died with it
                # (nothing half-applied survives), and the parent shard
                # never saw the slice -- so the mutation is safe to run
                # parent-side, exactly as if the offload never happened.
                # The slice's cipher work honestly runs again and is
                # counted again, like the stale-install race below.
                self._note_worker_trouble(value, (shard_id,))
                procs.invalidate((shard_id,))
                try:
                    shard = self.shards[shard_id]
                    if op == "put_many":
                        shard.put_many(partitions[shard_id])
                    else:
                        shard.delete_many(partitions[shard_id])
                except BaseException as exc:
                    if first_error is None:
                        first_error = exc
                finally:
                    self._note_changed_writes((shard_id,))
                continue
            if not ok:
                # the slice failed worker-side (duplicate key, missing
                # key, oversized record): the replica rolled back, but
                # its rollback may have moved bytes -- re-ship it
                procs.invalidate((shard_id,))
                if first_error is None:
                    first_error = value
                continue
            stats_after, _count, kind, state = value
            try:
                installed = self._install_offload(shard_id, kind, state)
            except BaseException as exc:
                procs.invalidate((shard_id,))
                if first_error is None:
                    first_error = exc
                continue
            if installed:
                procs.rebase(shard_id, stats_after)
                procs.sync_stats["offloaded_batches"] += 1
                if kind == "delta":
                    procs.sync_stats["offload_bytes"] += state.payload_bytes
                    procs.sync_stats["offload_blocks"] += state.blocks_shipped
                    procs.sync_stats["delta_run_bytes_saved"] += (
                        state.run_bytes_saved
                    )
            else:
                # a writer raced in between the sync and the install:
                # the worker's result describes a stale base state.
                # Drop it (re-ship the replica) and run this slice
                # parent-side; in this rare race the slice's cipher
                # work honestly happened twice and is counted twice.
                procs.invalidate((shard_id,))
                try:
                    shard = self.shards[shard_id]
                    if op == "put_many":
                        shard.put_many(partitions[shard_id])
                    else:
                        shard.delete_many(partitions[shard_id])
                finally:
                    self._note_changed_writes((shard_id,))
        if first_error is not None:
            raise first_error
        return True

    def _install_offload(self, shard_id: int, kind: str, state) -> bool:
        """Adopt one offloaded slice's shipped state into the parent shard.

        Returns ``False`` (install refused, nothing changed) when the
        parent shard moved since the worker was synced -- the worker's
        delta describes a different base state and applying it would
        clobber the racing writer's bytes.  Checked under the shard's
        write lock, where every mutation publishes its epoch.
        """
        shard = self.shards[shard_id]
        procs = self._procs
        with shard.lock.write_locked():
            with self._epoch_locks[shard_id]:
                current = self._shard_epochs[shard_id]
            if (
                procs.epochs_sent[shard_id] != current
                or shard.has_unsealed_changes
                or shard.has_uncommitted_changes
                or bool(shard.tree.pager.dirty_blocks)
            ):
                return False
            if kind == "delta":
                # reentrant write lock: apply_delta takes it again
                shard.apply_delta(state)
            else:
                tree_state, node_blocks, record_state = state
                shard.tree.pager.discard_dirty()
                shard.tree.pager.clear_cache()
                shard.disk.import_state(node_blocks)
                shard.records.import_state(record_state)
                shard.tree.restore_state(tree_state)
            # same pairing as _process_bulk_load: bump + seal under the
            # shard lock, then mark the worker current -- it already
            # holds exactly the state it just shipped us
            self._note_writes((shard_id,))
            procs.epochs_sent[shard_id] = self._shard_epochs[shard_id]
        return True

    # -- cache warming ----------------------------------------------------

    def warm(
        self,
        levels: int = 2,
        hot_record_blocks: int = 0,
        background: bool = False,
    ) -> int:
        """Pre-decode every shard's top tree levels into its node caches.

        Fans out per shard like any read.  ``hot_record_blocks`` asks
        each shard to additionally pre-decode up to that many of its
        hottest record blocks (live heat plus any persisted heat adopted
        at reopen -- see :meth:`load_heat`).  With the process backend,
        live worker replicas are warmed too (after the usual epoch
        sync), because that is where process-backend queries actually
        run; their warming work rolls up into ``stats()`` like every
        other worker-side counter.  Returns the total nodes touched.

        ``background=True`` starts each parent shard's warm on its own
        daemon thread and returns 0 immediately (see
        :meth:`EncipheredDatabase.warm`); worker replicas are skipped --
        they warm themselves on their next synced fan-out.
        """
        shard_ids, _ = self.health.partition(range(len(self.shards)))
        if background:
            for i in shard_ids:
                self.shards[i].warm(levels, hot_record_blocks, background=True)
            return 0
        warmed = sum(
            self._fan_out(
                lambda i: self.shards[i].warm(levels, hot_record_blocks),
                shard_ids,
            )
        )
        if self._use_processes(shard_ids):
            try:
                warmed += sum(
                    self._process_map("warm", shard_ids, [levels] * len(shard_ids))
                )
            except UncommittedShardState:
                pass  # racing writer left dirt: parent-side warm stands
            except (WorkerCrashError, ShardUnavailableError) as exc:
                self._note_worker_trouble(exc, shard_ids)
        return warmed

    def save_heat(self) -> int:
        """Persist every shard's record-block heat map to its backend.

        Worker replicas' heat is harvested into the parent shards first,
        so the persisted maps cover every process that served traffic.
        Returns the number of shards that saved a map (shards without a
        backend are skipped).
        """
        if self._procs is not None:
            for i, shard in enumerate(self.shards):
                self._procs.harvest(i, shard)
        return sum(1 for shard in self.shards if shard.save_heat())

    def load_heat(self) -> int:
        """Adopt each shard's persisted heat map as its warming seed.

        Returns the number of shards that found a map.  (The manifest
        reopen path does this automatically; this is for clusters built
        via :meth:`reopen` whose caller holds a backend per shard.)
        """
        return sum(1 for shard in self.shards if shard.load_heat() is not None)

    # -- transactions and durability -------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["ShardedEncipheredDatabase"]:
        """One transaction spanning every shard.

        Shard transactions are entered in shard order (a fixed order, so
        two concurrent cluster transactions cannot deadlock on each
        other's write locks) and unwound together: a clean exit commits
        every shard, an exception rolls every shard back.  Fan-out
        operations called inside the scope run serially on this thread
        (see :meth:`_fan_out`).
        """
        committing = False
        try:
            with ExitStack() as stack:
                for shard in self.shards:
                    stack.enter_context(shard.transaction())
                self._txn_thread = threading.get_ident()
                try:
                    yield self
                    committing = True  # clean exit: shards commit on unwind
                finally:
                    self._txn_thread = None
        finally:
            # runs after every shard committed (or rolled back), so the
            # journals have seen the commit's flush: bump exactly the
            # shards whose committed bytes changed.  A rolled-back scope
            # bumps nothing at all -- replicas keep serving the pre-
            # transaction state, which *is* the logical outcome; the
            # rollback's only byte changes (freed record slots, which no
            # tree references) stay in the journals' open sets and ride
            # along with the next committed epoch.  No-op transactions
            # are journal-invisible and bump nothing either.
            if committing:
                self._note_changed_writes(range(len(self.shards)))

    def commit(self) -> None:
        """Make every shard's pending changes durable.

        Only shards with pending work get their replica epoch bumped: a
        no-op commit rewrites the superblock with identical bytes, so
        the worker replicas stay valid and a read-heavy process-backend
        workload does not re-ship every platter after each periodic
        commit.  Quarantined shards are skipped: their device already
        failed permanently, and re-raising that error from every
        periodic commit would stop the healthy shards from ever
        committing.
        """
        for i, shard in enumerate(self.shards):
            if self.health.is_quarantined(i):
                continue
            pending = (
                shard.has_uncommitted_changes or shard.tree.pager.dirty_blocks
            )
            shard.commit()
            if pending:
                self._note_writes((i,))

    def clear_caches(self) -> None:
        """Drop every shard's cached plaintext (cold-start support).

        Process-backend worker replicas hold their own plaintext caches;
        live workers are told to go cold too, so a cold benchmark run
        means cold everywhere.
        """
        for shard in self.shards:
            shard.clear_caches()
        if self._procs is not None:
            self._procs.clear_caches()

    # -- whole-cluster queries -------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def items(self) -> Iterator[tuple[int, bytes]]:
        """Every ``(key, record)`` pair in ascending key order.

        A lazy k-way merge of the shards' sorted iterators; each shard's
        read lock is held while its iterator is live.
        """
        yield from heapq.merge(
            *(shard.items() for shard in self.shards), key=lambda pair: pair[0]
        )

    def stats(self) -> ClusterStats:
        """Aggregated per-shard counter rollups (see :class:`ClusterStats`).

        With the process backend, operations executed inside worker
        replicas are merged into their shard's rollup (leaf-wise, like
        every other counter), so the cost model reports every cipher
        operation the cluster performed regardless of which process ran
        it -- serial, threaded and process runs of the same workload
        report identical cipher totals.
        """
        per_shard = []
        for i, shard in enumerate(self.shards):
            extras = (
                self._procs.extra_counters(i, shard)
                if self._procs is not None
                else []
            )
            # extras first: extra_counters folds worker block heat into
            # the shard, which the shard's own snapshot then reflects
            base = shard.stats()
            per_shard.append(merge_counter_dicts([base, *extras]) if extras else base)
            # gauges are export-only readings (outside the mergeable
            # snapshot): publish each shard's health state where the
            # obs dump can show it next to the latency instruments
            shard.obs.registry.gauge("health.state").set(
                _HEALTH_GAUGE[self.health.state(i)]
            )
        return ClusterStats(
            router=self.router.name,
            per_shard=per_shard,
            replica_sync=self.sync_stats(),
            health=self.health.snapshot(
                worker=self._procs.sync_stats if self._procs is not None else None
            ),
        )

    def sync_stats(self) -> dict[str, int] | None:
        """Replica ship accounting (``None`` until a process sync ran).

        ``full_ships``/``full_bytes`` count whole-platter spec ships,
        ``delta_ships``/``delta_bytes``/``delta_blocks`` the incremental
        catch-ups; benchmark C11 derives bytes-shipped-per-write from
        these.  ``delta_run_bytes_saved`` totals the id-index bytes the
        contiguous-run encoding shaved off every delta shipped in either
        direction.  ``offloaded_batches``/``offload_bytes``/
        ``offload_blocks`` count worker-side ``put_many``/``delete_many``
        executions and the delta traffic their results shipped *back*
        (benchmark C14).
        """
        if self._procs is None:
            return None
        return dict(self._procs.sync_stats)

    def check_invariants(self) -> None:
        """Verify every shard's B-Tree invariants and router placement."""
        for shard in self.shards:
            with shard.lock.read_locked():  # tree walks must not race writers
                shard.tree.check_invariants()
        self._validate_routing(self.shards, self.router)
