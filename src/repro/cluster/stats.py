"""Aggregated statistics over every shard of a cluster.

Each shard's :meth:`~repro.core.database.EncipheredDatabase.stats` dict
nests one level per subsystem with numeric leaves; :class:`ClusterStats`
keeps the per-shard dicts verbatim (benchmark C8 reports per-shard write
amplification from them) and sums them leaf-wise into a cluster-level
rollup.  Balance metrics summarise how evenly the router spread the
keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


def merge_counter_dicts(dicts: list[dict[str, object]]) -> dict[str, object]:
    """Leaf-wise sum of same-shaped nested dicts of numbers."""
    if not dicts:
        return {}
    merged: dict[str, object] = {}
    for key, value in dicts[0].items():
        if isinstance(value, dict):
            merged[key] = merge_counter_dicts([d[key] for d in dicts])
        else:
            merged[key] = sum(d[key] for d in dicts)
    return merged


def subtract_counter_dicts(
    current: dict[str, object], base: dict[str, object]
) -> dict[str, object]:
    """Leaf-wise ``current - base`` of same-shaped nested dicts.

    The process executor uses this to turn two snapshots of a worker's
    counters into the delta attributable to the operations in between.
    """
    delta: dict[str, object] = {}
    for key, value in current.items():
        if isinstance(value, dict):
            delta[key] = subtract_counter_dicts(value, base[key])
        else:
            delta[key] = value - base[key]
    return delta


@dataclass
class ClusterStats:
    """Point-in-time statistics for a sharded database.

    ``per_shard[i]`` is shard ``i``'s full counter rollup;
    ``aggregate`` is their leaf-wise sum.  ``replica_sync`` carries the
    process executor's ship accounting (full vs delta re-syncs and the
    platter bytes each moved) when that backend has run, ``None``
    otherwise; it is executor-level state, not a per-shard counter, so
    it stays outside the leaf-wise merge.  ``health`` is the
    fault-tolerance rollup from :class:`~repro.cluster.health.
    ClusterHealth` -- per-shard state machines, lifetime fault counters
    and the executor's supervision counters; like ``replica_sync`` it
    carries cluster-level state and stays outside the merge.
    """

    router: str
    per_shard: list[dict[str, object]]
    replica_sync: dict[str, int] | None = None
    health: dict[str, object] | None = None

    @property
    def num_shards(self) -> int:
        return len(self.per_shard)

    @cached_property
    def aggregate(self) -> dict[str, object]:
        # cached: a ClusterStats is a point-in-time snapshot, and several
        # properties (cache rollups, hit rates) derive from one merge
        return merge_counter_dicts(self.per_shard)

    @property
    def shard_sizes(self) -> list[int]:
        return [s["size"] for s in self.per_shard]

    @property
    def total_size(self) -> int:
        return sum(self.shard_sizes)

    @property
    def imbalance(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfectly even)."""
        sizes = self.shard_sizes
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 0.0

    # -- read-path cache rollups -----------------------------------------

    @staticmethod
    def _hit_rate(counters: dict[str, object]) -> float:
        accesses = counters["hits"] + counters["misses"]
        return counters["hits"] / accesses if accesses else 0.0

    @property
    def record_cache(self) -> dict[str, object]:
        """Cluster-wide plaintext record-block cache counters."""
        return self.aggregate["record_cache"]

    @property
    def node_decoded_cache(self) -> dict[str, object]:
        """Cluster-wide decoded node-view cache counters."""
        return self.aggregate["node_decoded_cache"]

    @property
    def record_cache_hit_rate(self) -> float:
        return self._hit_rate(self.record_cache)

    @property
    def node_decoded_cache_hit_rate(self) -> float:
        return self._hit_rate(self.node_decoded_cache)

    # -- observability rollups -------------------------------------------

    @property
    def observability(self) -> dict[str, object]:
        """Cluster-wide merged latency histograms, heat and span counts."""
        return self.aggregate["observability"]

    @property
    def latency(self) -> dict[str, object]:
        """Merged per-instrument latency histogram snapshots."""
        return self.observability["latency"]

    @property
    def heat(self) -> dict[str, object]:
        """Cluster-wide key-range heat counters (see ``shard_heat``)."""
        return self.observability["heat"]

    @property
    def shard_heat(self) -> list[dict[str, object]]:
        """Per-shard key-range heat -- the hot-shard-splitting signal."""
        return [s["observability"]["heat"] for s in self.per_shard]

    def hottest_shards(self) -> list[tuple[int, int]]:
        """``(shard_id, ops)`` pairs sorted busiest first (ties by id)."""
        ranked = sorted(
            ((heat["ops"], i) for i, heat in enumerate(self.shard_heat)),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return [(i, ops) for ops, i in ranked]

    def summary(self) -> str:
        """One human-readable line per shard plus the rollup."""
        lines = []
        for i, s in enumerate(self.per_shard):
            node, cipher = s["node_disk"], s["pointer_cipher"]
            rcache = s["record_cache"]
            lines.append(
                f"shard {i}: {s['size']} keys, "
                f"{node['writes']} node writes, "
                f"{cipher['encryptions']}E/{cipher['decryptions']}D pointer ops, "
                f"record cache {self._hit_rate(rcache):.0%} "
                f"({rcache['hits']}/{rcache['hits'] + rcache['misses']})"
            )
        agg = self.aggregate  # one leaf-wise merge serves every line below
        lines.append(
            f"cluster ({self.router}, {self.num_shards} shards): "
            f"{self.total_size} keys, "
            f"{agg['node_disk']['writes']} node writes, "
            f"imbalance {self.imbalance:.2f}, "
            f"record cache {self._hit_rate(agg['record_cache']):.0%}, "
            f"decoded-node cache {self._hit_rate(agg['node_decoded_cache']):.0%}"
        )
        if self.replica_sync is not None:
            sync = self.replica_sync
            lines.append(
                f"replica sync: {sync['delta_ships']} delta ships "
                f"({sync['delta_bytes']} B), {sync['full_ships']} full ships "
                f"({sync['full_bytes']} B)"
            )
        if self.health is not None:
            states = self.health["states"]
            worker = self.health["worker"]
            lines.append(
                f"health: {states['healthy']} healthy / "
                f"{states['degraded']} degraded / "
                f"{states['quarantined']} quarantined; "
                f"{worker['respawns']} respawns, "
                f"{worker['worker_deaths']} worker deaths, "
                f"{self.health['degraded_reads_served']} degraded reads"
            )
        heat = agg.get("observability", {}).get("heat")
        if heat and heat.get("ops"):
            busiest = self.hottest_shards()[0]
            lines.append(
                f"heat: {heat['ops']} ops over {heat['keys']} keys; "
                f"busiest shard {busiest[0]} ({busiest[1]} ops)"
            )
        return "\n".join(lines)
