"""repro -- reproduction of Hardjono & Seberry, VLDB 1990.

*Search Key Substitution in the Encipherment of B-Trees* proposes
disguising B-Tree search keys with combinatorial block designs -- instead
of encrypting them -- while tree and data pointers stay encrypted.  The
result: one decryption per node visited instead of ``log2(n)``, smaller
triplets, and (with the order-preserving sum-of-treatments disguise)
range queries through an untrusted DBMS.

Quickstart::

    from repro import EncipheredBTree, OvalSubstitution, planar_difference_set

    design = planar_difference_set(9)          # v = 91 keys
    tree = EncipheredBTree(OvalSubstitution(design, t=2))
    tree.insert(41, b"records stay encrypted at rest")
    assert tree.search(41) == b"records stay encrypted at rest"

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.cluster import (
    ClusterStats,
    HashRouter,
    RangeRouter,
    ShardedEncipheredDatabase,
    ShardRouter,
)
from repro.core import (
    BayerMetzgerBTree,
    EncipheredBTree,
    EncipheredDatabase,
    MultilevelEncipheredBTree,
    PlainBTreeSystem,
    SecurityFilter,
    TraversalCost,
)
from repro.designs import (
    PAPER_DIFFERENCE_SET,
    BlockDesign,
    DifferenceSet,
    ProjectivePlane,
    non_multiplier_units,
    oval_table,
    planar_difference_set,
    singer_difference_set,
)
from repro.exceptions import ReproError
from repro.substitution import (
    EncryptedKeySubstitution,
    ExponentiationSubstitution,
    IdentitySubstitution,
    KeySubstitution,
    OvalSubstitution,
    RankedSumSubstitution,
    SumSubstitution,
)

__version__ = "1.0.0"

__all__ = [
    "BayerMetzgerBTree",
    "BlockDesign",
    "ClusterStats",
    "DifferenceSet",
    "EncipheredBTree",
    "EncipheredDatabase",
    "EncryptedKeySubstitution",
    "ExponentiationSubstitution",
    "HashRouter",
    "IdentitySubstitution",
    "KeySubstitution",
    "MultilevelEncipheredBTree",
    "OvalSubstitution",
    "PAPER_DIFFERENCE_SET",
    "PlainBTreeSystem",
    "ProjectivePlane",
    "RangeRouter",
    "RankedSumSubstitution",
    "ReproError",
    "SecurityFilter",
    "ShardRouter",
    "ShardedEncipheredDatabase",
    "SumSubstitution",
    "TraversalCost",
    "non_multiplier_units",
    "oval_table",
    "planar_difference_set",
    "singer_difference_set",
    "__version__",
]
