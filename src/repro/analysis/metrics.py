"""Quantitative yardsticks for the security experiments.

All metrics are implemented from first principles (no scipy dependency in
the library proper) and are exact, not sampled.
"""

from __future__ import annotations

from collections import Counter
from math import log2

from repro.exceptions import ReproError


def _merge_count(values: list[int]) -> tuple[list[int], int]:
    """Merge sort that counts inversions."""
    n = len(values)
    if n <= 1:
        return values, 0
    mid = n // 2
    left, inv_left = _merge_count(values[:mid])
    right, inv_right = _merge_count(values[mid:])
    merged: list[int] = []
    inversions = inv_left + inv_right
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            inversions += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions


def count_inversions(values: list[int]) -> int:
    """Number of out-of-order pairs in ``values`` (O(n log n))."""
    return _merge_count(list(values))[1]


def normalized_inversions(values: list[int]) -> float:
    """Inversions divided by the maximum possible ``n(n-1)/2``.

    0.0 for sorted input, 1.0 for reverse-sorted, ~0.5 for random: a
    direct measure of how thoroughly a disguise scrambles key order.
    """
    n = len(values)
    if n < 2:
        return 0.0
    return count_inversions(values) / (n * (n - 1) / 2)


def kendall_tau(xs: list[int], ys: list[int]) -> float:
    """Kendall rank correlation between two paired sequences.

    +1 when ``ys`` is a monotone increasing function of ``xs`` (an
    order-preserving disguise leaks full order), ~0 when unrelated, -1
    when order-reversing.  Ties are not expected (keys are distinct).
    """
    if len(xs) != len(ys):
        raise ReproError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 1.0
    order = sorted(range(n), key=lambda i: xs[i])
    reordered = [ys[i] for i in order]
    discordant = count_inversions(reordered)
    total = n * (n - 1) / 2
    return 1.0 - 2.0 * discordant / total


def byte_entropy(data: bytes) -> float:
    """Shannon entropy of a byte string in bits/byte (max 8.0).

    Encrypted blocks sit near 8; structured plaintext well below.
    """
    if not data:
        return 0.0
    counts = Counter(data)
    n = len(data)
    return -sum((c / n) * log2(c / n) for c in counts.values())


def edge_precision_recall(
    guessed: set[tuple[int, int]], true: set[tuple[int, int]]
) -> tuple[float, float]:
    """Precision and recall of a guessed parent->child edge set."""
    if not guessed:
        return (0.0, 0.0 if true else 1.0)
    hit = len(guessed & true)
    precision = hit / len(guessed)
    recall = hit / len(true) if true else 1.0
    return (precision, recall)
