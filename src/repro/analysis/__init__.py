"""Opponent-side analysis: what the raw disk blocks give away.

The paper's central security claim is that disguised keys plus encrypted
pointers *"prevent the opponent or attacker from recreating the correct
shape of the B-Tree"*.  This package plays the opponent:

* :mod:`repro.analysis.attacker` -- parses the at-rest blocks the way an
  opponent with full layout knowledge (Kerckhoffs) but no keys would, and
  mounts the natural attacks: key-order inference, rank matching against
  a known key universe, linear multiplier recovery from known plaintext,
  and parent/child edge guessing;
* :mod:`repro.analysis.metrics` -- the yardsticks: Kendall rank
  correlation, byte entropy, edge precision/recall.
"""

from repro.analysis.attacker import (
    AttackSurface,
    ParsedBlock,
    edge_recovery_by_sequence,
    key_order_correlation,
    multiplier_recovery_attack,
    parse_substituted_blocks,
    range_nesting_edges,
    rank_matching_attack,
)
from repro.analysis.metrics import (
    byte_entropy,
    edge_precision_recall,
    kendall_tau,
    normalized_inversions,
)

__all__ = [
    "AttackSurface",
    "ParsedBlock",
    "byte_entropy",
    "edge_precision_recall",
    "edge_recovery_by_sequence",
    "kendall_tau",
    "key_order_correlation",
    "multiplier_recovery_attack",
    "normalized_inversions",
    "parse_substituted_blocks",
    "range_nesting_edges",
    "rank_matching_attack",
]
