"""The opponent's toolkit.

Threat model (the paper's, made precise): the opponent has *"access only
to the B-Tree representation on a sequential set of disk blocks"*, knows
the on-disk layout (Kerckhoffs' principle -- widths of every field), but
holds no cryptographic keys and no block-design secrets.  Under the
Hardjono--Seberry layout this means the opponent can read, per block:
the node header, the *disguised* keys, and the opaque pointer
cryptograms.

Attacks implemented:

* :func:`key_order_correlation` -- does sorting disguised keys reveal the
  plaintext order?  (It does, completely, for the order-preserving sum
  disguise -- the classic OPE leakage -- and not at all for oval or
  exponentiation disguises.)
* :func:`rank_matching_attack` -- full key recovery when the opponent
  knows the plaintext key *set* (census attack on order-preserving
  disguises).
* :func:`multiplier_recovery_attack` -- the oval disguise is linear, so a
  single known (key, substitute) pair with invertible key recovers ``t``
  and with it every key: the paper's warning that disguising *"offers
  less security than encryption"*, demonstrated.
* :func:`edge_recovery_by_sequence` / :func:`range_nesting_edges` --
  attempts to recreate the tree shape from block order or from key-range
  containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from repro.analysis.metrics import kendall_tau
from repro.btree.codec import HEADER_BYTES
from repro.crypto.numbers import modinv
from repro.exceptions import ReproError
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class ParsedBlock:
    """What the opponent extracts from one node block at rest."""

    block_id: int
    is_leaf: bool
    num_keys: int
    disguised_keys: tuple[int, ...]
    cryptograms: tuple[int, ...]


@dataclass(frozen=True)
class AttackSurface:
    """Everything the opponent managed to parse from the disk."""

    blocks: tuple[ParsedBlock, ...]

    @property
    def all_disguised_keys(self) -> list[int]:
        return [k for b in self.blocks for k in b.disguised_keys]

    def internal_blocks(self) -> list[ParsedBlock]:
        return [b for b in self.blocks if not b.is_leaf]

    def leaf_blocks(self) -> list[ParsedBlock]:
        return [b for b in self.blocks if b.is_leaf]


def parse_substituted_blocks(
    disk: SimulatedDisk,
    key_bytes: int,
    cryptogram_bytes: int,
) -> AttackSurface:
    """Parse every block on the platter as a Hardjono--Seberry node.

    Blocks that do not parse (data blocks, enciphered-header baselines)
    are skipped -- the opponent cannot even tell how many triplets they
    hold.
    """
    parsed = []
    for block_id, data in disk.raw_blocks():
        if len(data) < HEADER_BYTES or data[0] not in (0, 1):
            continue
        is_leaf = bool(data[0])
        n = int.from_bytes(data[1:3], "big")
        crypt_count = n if is_leaf else n + 1
        expected = HEADER_BYTES + n * key_bytes + crypt_count * cryptogram_bytes
        if n == 0 or len(data) != expected:
            continue
        offset = HEADER_BYTES
        keys = tuple(
            int.from_bytes(data[offset + i * key_bytes : offset + (i + 1) * key_bytes], "big")
            for i in range(n)
        )
        offset += n * key_bytes
        cryptograms = tuple(
            int.from_bytes(
                data[offset + i * cryptogram_bytes : offset + (i + 1) * cryptogram_bytes],
                "big",
            )
            for i in range(crypt_count)
        )
        parsed.append(
            ParsedBlock(
                block_id=block_id,
                is_leaf=is_leaf,
                num_keys=n,
                disguised_keys=keys,
                cryptograms=cryptograms,
            )
        )
    return AttackSurface(blocks=tuple(parsed))


# ---------------------------------------------------------------------------
# Order and value attacks on the disguised keys.
# ---------------------------------------------------------------------------


def key_order_correlation(pairs: list[tuple[int, int]]) -> float:
    """Kendall tau between plaintext keys and their disguises.

    ``pairs`` are ``(plaintext, disguised)``; the experimenter supplies
    them from ground truth.  |tau| near 1 means sorting the at-rest keys
    reveals the plaintext order.
    """
    if len(pairs) < 2:
        raise ReproError("need at least two pairs")
    return kendall_tau([p for p, _ in pairs], [d for _, d in pairs])


def rank_matching_attack(
    disguised_keys: list[int], known_universe: list[int]
) -> dict[int, int]:
    """Census attack: match disguise ranks against a known key set.

    If the opponent knows exactly which plaintext keys are in the
    database (e.g. employee numbers 0..R-1), and suspects the disguise is
    order-preserving, matching the i-th smallest disguise to the i-th
    smallest known key recovers a full candidate mapping.  The caller
    scores it against ground truth.
    """
    if len(disguised_keys) != len(known_universe):
        raise ReproError(
            f"census sizes differ: {len(disguised_keys)} disguises, "
            f"{len(known_universe)} known keys"
        )
    return {
        disguised: plain
        for disguised, plain in zip(sorted(disguised_keys), sorted(known_universe))
    }


def rank_attack_accuracy(
    mapping: dict[int, int], truth: list[tuple[int, int]]
) -> float:
    """Fraction of ``(plaintext, disguised)`` pairs the mapping gets right."""
    if not truth:
        raise ReproError("no ground truth supplied")
    hits = sum(1 for plain, disguised in truth if mapping.get(disguised) == plain)
    return hits / len(truth)


def multiplier_recovery_attack(
    known_pairs: list[tuple[int, int]], v: int
) -> int | None:
    """Recover the oval multiplier ``t`` from known plaintext.

    The oval disguise is ``k' = k*t mod v``: one pair with ``gcd(k,v)=1``
    gives ``t = k' * k^{-1} mod v``; remaining pairs confirm.  Returns the
    recovered multiplier, or ``None`` if no consistent ``t`` exists (i.e.
    the disguise is not a single modular multiplication).
    """
    candidate: int | None = None
    for plain, disguised in known_pairs:
        if gcd(plain % v, v) != 1:
            continue
        candidate = disguised * modinv(plain, v) % v
        break
    if candidate is None:
        return None
    for plain, disguised in known_pairs:
        if plain * candidate % v != disguised % v:
            return None
    return candidate


# ---------------------------------------------------------------------------
# Shape reconstruction.
# ---------------------------------------------------------------------------


def edge_recovery_by_sequence(surface: AttackSurface, fanout_guess: int) -> set[tuple[int, int]]:
    """Guess edges assuming breadth-first sequential block allocation.

    The naive heuristic an opponent tries first: block 0 is the root and
    children were allocated consecutively.  Against a tree grown by
    random inserts (splits allocate out of order) this collapses.
    """
    ids = [b.block_id for b in surface.blocks]
    edges: set[tuple[int, int]] = set()
    for position, parent in enumerate(ids):
        for j in range(fanout_guess):
            child_position = position * fanout_guess + 1 + j
            if child_position < len(ids):
                edges.add((parent, ids[child_position]))
    return edges


def range_nesting_edges(surface: AttackSurface) -> set[tuple[int, int]]:
    """Guess edges by nesting disguised-key ranges.

    Valid reasoning *if* the disguise preserves order: a child's key range
    fits strictly inside a gap between consecutive keys of its parent.
    For each candidate (parent, child) pair the opponent checks whether
    the child's [min, max] fits in some gap of the parent; among multiple
    candidate parents the tightest gap wins.  Against non-order-preserving
    disguises the ranges nest essentially at random.
    """
    internals = surface.internal_blocks()
    edges: set[tuple[int, int]] = set()
    for child in surface.blocks:
        lo, hi = min(child.disguised_keys), max(child.disguised_keys)
        best: tuple[int, int] | None = None  # (gap width, parent id)
        for parent in internals:
            if parent.block_id == child.block_id:
                continue
            bounds = [-1, *sorted(parent.disguised_keys), None]
            for left, right in zip(bounds, bounds[1:]):
                right_bound = float("inf") if right is None else right
                if left < lo and hi < right_bound:
                    width = int(right_bound - left) if right is not None else 1 << 62
                    if best is None or width < best[0]:
                        best = (width, parent.block_id)
                    break
        if best is not None:
            edges.add((best[1], child.block_id))
    return edges


def true_edges(tree) -> set[tuple[int, int]]:
    """Ground-truth parent->child edges of a live tree (experimenter side)."""
    edges: set[tuple[int, int]] = set()
    frontier = [tree.root_id]
    while frontier:
        node_id = frontier.pop()
        view = tree._view(node_id)
        if not view.is_leaf:
            for i in range(view.num_keys + 1):
                child = view.child_at(i)
                edges.add((node_id, child))
                frontier.append(child)
    return edges
