"""Block-level distinguishability analysis.

Bayer and Metzger's stated goal is that *"the opponent or attacker cannot
distinguish one block from the next"*; the Hardjono--Seberry layout
deliberately gives up part of that (headers and disguised keys are
plaintext) in exchange for traversal speed.  This module quantifies the
trade: per-block byte entropy, chi-square distance of byte distributions,
and a naive classifier that tries to tell node blocks from data blocks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.metrics import byte_entropy
from repro.exceptions import ReproError


@dataclass(frozen=True)
class BlockProfile:
    """Summary statistics of one at-rest block."""

    block_id: int
    size: int
    entropy: float
    zero_fraction: float
    ascii_fraction: float


def profile_block(block_id: int, data: bytes) -> BlockProfile:
    """Compute the distinguishing statistics of one block."""
    if not data:
        raise ReproError(f"block {block_id} is empty")
    zero = data.count(0) / len(data)
    ascii_printable = sum(1 for b in data if 0x20 <= b < 0x7F) / len(data)
    return BlockProfile(
        block_id=block_id,
        size=len(data),
        entropy=byte_entropy(data),
        zero_fraction=zero,
        ascii_fraction=ascii_printable,
    )


def profile_disk(disk) -> list[BlockProfile]:
    """Profile every written block of a simulated disk."""
    return [profile_block(block_id, data) for block_id, data in disk.raw_blocks()]


def chi_square_distance(a: bytes, b: bytes) -> float:
    """Chi-square distance between two blocks' byte distributions.

    Near zero for two samples of the same distribution (e.g. two
    well-enciphered blocks); large when the distributions differ (a
    structured block against an enciphered one).
    """
    if not a or not b:
        raise ReproError("cannot compare empty blocks")
    counts_a = Counter(a)
    counts_b = Counter(b)
    total = 0.0
    for byte in set(counts_a) | set(counts_b):
        pa = counts_a.get(byte, 0) / len(a)
        pb = counts_b.get(byte, 0) / len(b)
        if pa + pb:
            total += (pa - pb) ** 2 / (pa + pb)
    return total / 2.0


def mean_pairwise_distance(blocks: list[bytes], limit: int = 30) -> float:
    """Mean chi-square distance over block pairs (sampled up to limit)."""
    sample = blocks[:limit]
    if len(sample) < 2:
        raise ReproError("need at least two blocks")
    total = 0.0
    pairs = 0
    for i in range(len(sample)):
        for j in range(i + 1, len(sample)):
            total += chi_square_distance(sample[i], sample[j])
            pairs += 1
    return total / pairs


def classify_blocks_by_entropy(
    profiles: list[BlockProfile], threshold: float = 7.0
) -> dict[int, str]:
    """The opponent's naive classifier: low entropy => structured node
    block, high entropy => enciphered block.

    Against a fully enciphered layout everything lands in one class
    (indistinguishable); against the Hardjono--Seberry layout the
    plaintext key arrays pull node blocks below the threshold.
    """
    return {
        p.block_id: ("structured" if p.entropy < threshold else "enciphered")
        for p in profiles
    }


def distinguishability_report(node_disk, data_disk) -> dict[str, float]:
    """How well a byte-level feature separates node from data blocks.

    Shannon entropy of short blocks is biased by sample size (a 100-byte
    block cannot reach 8 bits/byte even if perfectly random), so the
    classifier feature is the *zero-byte fraction*: structured layouts
    store many small big-endian integers whose leading bytes are zero,
    while ciphertext holds zeros at ~1/256.  Returns the classifier's
    accuracy against ground truth (0.5 is chance for balanced classes;
    1.0 means the layouts are trivially distinguishable) plus the class
    means of both features.
    """
    node_profiles = profile_disk(node_disk)
    data_profiles = profile_disk(data_disk)
    if not node_profiles or not data_profiles:
        raise ReproError("both disks must hold written blocks")
    labelled = [(p, "node") for p in node_profiles] + [
        (p, "data") for p in data_profiles
    ]
    node_zero = sum(p.zero_fraction for p in node_profiles) / len(node_profiles)
    data_zero = sum(p.zero_fraction for p in data_profiles) / len(data_profiles)
    threshold = (node_zero + data_zero) / 2
    node_side_is_high = node_zero >= data_zero
    correct = 0
    for profile, label in labelled:
        is_high = profile.zero_fraction >= threshold
        guess = "node" if is_high == node_side_is_high else "data"
        correct += guess == label
    return {
        "accuracy": correct / len(labelled),
        "node_zero_fraction": node_zero,
        "data_zero_fraction": data_zero,
        "node_entropy": sum(p.entropy for p in node_profiles) / len(node_profiles),
        "data_entropy": sum(p.entropy for p in data_profiles) / len(data_profiles),
    }
