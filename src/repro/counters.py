"""Thread-safe operation counters: per-thread accumulation, merged reads.

The repo's cost model is a *counting* argument -- substitutions per
probe, decryptions per node visit, comparisons per descent -- and the
counters were originally plain dataclass fields bumped with ``+=``.
That was exact in single-threaded runs but racy the moment the cluster's
thread pool fanned readers out: two threads loading, incrementing and
storing the same field lose updates, so a concurrent benchmark could
*under-report* cryptographic work (the one direction a security cost
model must never err in).

:class:`ThreadSafeCounters` closes that without putting a lock on every
hot-path increment: each thread accumulates into its own private bucket
(no sharing, no contention, no lost updates), and reads merge all
buckets under a lock.  A bucket is registered once per thread; when its
thread is collected the bucket is folded into a retired total, so
totals never shrink and unbounded thread churn never grows the bucket
list or slows the merged reads.  The merged read
is a momentary sum -- exact whenever the writers are quiescent (which is
when benchmarks read it), and never an undercount of work already
completed by any thread at merge time.

Concrete counter families (:class:`~repro.btree.tree.TreeCounters`,
:class:`~repro.substitution.base.SubstitutionCounters`,
:class:`~repro.crypto.base.CryptoOpCounts`, ...) subclass this with a
``_FIELDS`` tuple; each field is readable as an attribute (merged total)
and bumped via :meth:`bump`.
"""

from __future__ import annotations

import threading
import weakref


class _Bucket(dict):
    """A per-thread counter dict that supports weak references."""

    __slots__ = ("__weakref__",)


def _retire_bucket(counters_ref: "weakref.ref", bucket_ref: "weakref.ref") -> None:
    """Thread-death finalizer: fold the bucket into the retired totals.

    Module-level and armed with *weak* references only, so the finalizer
    pins neither the counters object nor the bucket: a counters object
    dropped by its owner is collectable immediately, even though the
    thread that bumped it (e.g. the main thread) lives on.
    """
    counters = counters_ref()
    bucket = bucket_ref()
    if counters is not None and bucket is not None:
        counters._retire(bucket)


class ThreadSafeCounters:
    """Named integer counters with per-thread buckets and merged reads.

    Subclasses declare ``_FIELDS``; every field then reads as a merged
    attribute (``counters.comparisons``) and increments via
    ``counters.bump("comparisons")``.  Constructor keyword arguments
    seed the calling thread's bucket, preserving the old dataclass
    construction style (``CryptoOpCounts(encryptions=3)``).
    """

    _FIELDS: tuple[str, ...] = ()

    def __init__(self, **initial: int) -> None:
        self._lock = threading.Lock()
        self._buckets: list[dict[str, int]] = []
        # counts folded in from threads that have exited, so totals
        # survive thread death without keeping a bucket per dead thread
        self._retired: dict[str, int] = dict.fromkeys(self._FIELDS, 0)
        self._finalizers: list[weakref.finalize] = []
        self._local = threading.local()
        for field, value in initial.items():
            if field not in self._FIELDS:
                raise TypeError(
                    f"{type(self).__name__} has no counter {field!r}"
                )
            self._mine()[field] = value

    # -- the write side (per-thread, lock-free) --------------------------

    def _mine(self) -> dict[str, int]:
        bucket = getattr(self._local, "bucket", None)
        if bucket is None:
            bucket = _Bucket.fromkeys(self._FIELDS, 0)
            with self._lock:
                self._buckets.append(bucket)
            self._local.bucket = bucket
            # when this thread's Thread object is collected, fold the
            # bucket into the retired totals -- unbounded thread churn
            # must not grow the bucket list or slow the merged reads
            finalizer = weakref.finalize(
                threading.current_thread(),
                _retire_bucket,
                weakref.ref(self),
                weakref.ref(bucket),
            )
            with self._lock:
                self._finalizers.append(finalizer)
        return bucket

    def __del__(self) -> None:
        # detach this instance's registrations from long-lived threads'
        # finalizer registries, so counter-object churn on an immortal
        # thread (e.g. main) does not accumulate dead no-op records
        for finalizer in getattr(self, "_finalizers", ()):
            finalizer.detach()

    def _retire(self, bucket: dict[str, int]) -> None:
        with self._lock:
            try:
                self._buckets.remove(bucket)
            except ValueError:
                return  # already retired (e.g. racing finalizers)
            for field, value in bucket.items():
                self._retired[field] += value

    def bump(self, field: str, n: int = 1) -> None:
        """Add ``n`` to ``field`` in this thread's private bucket."""
        self._mine()[field] += n

    # -- the read side (merged under the lock) ---------------------------

    def __getattr__(self, name: str):
        # only consulted when normal lookup fails, i.e. for counter
        # fields (real attributes live in __init__ / class properties)
        if name in type(self)._FIELDS:
            with self._lock:
                return self._retired[name] + sum(
                    bucket[name] for bucket in self._buckets
                )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def snapshot(self) -> dict[str, int]:
        """Every field's merged total, in one pass under the lock."""
        with self._lock:
            return {
                field: self._retired[field]
                + sum(bucket[field] for bucket in self._buckets)
                for field in type(self)._FIELDS
            }

    def reset(self) -> None:
        """Zero every thread's bucket (and the retired totals).

        Exact when writers are quiescent; a thread racing an increment
        past a reset may keep that one increment.
        """
        with self._lock:
            for field in type(self)._FIELDS:
                self._retired[field] = 0
            for bucket in self._buckets:
                for field in type(self)._FIELDS:
                    bucket[field] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"{type(self).__name__}({fields})"
