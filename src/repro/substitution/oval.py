"""§4.1 -- substitution using treatments on ovals.

The search keys are identified with the treatments (point integers) of a
``{v, k, lambda}`` design developed from a difference set; the disguise
replaces each key by *"the equivalent point on the oval"* obtained by
multiplying the line points by a secret unit ``t`` modulo ``v``.  Net
effect: ``k' = k * t mod v``, inverted by ``k = k' * t^{-1} mod v``.

Two operating modes are provided and property-tested to agree:

* ``direct`` -- the modular-arithmetic shortcut a real implementation
  would use (one multiplication per key);
* ``scan`` -- the paper's literal procedure: *"The substitution of a
  given search key is performed starting with line L0.  The k points on
  the line are compared with the search key.  If none of the points on
  the line matches the search key, the next line L1 is generated..."* --
  useful for fidelity checks and for the C6 ablation of scan cost.

Secret material: the design parameters ``{v, k, lambda}``, the first line
``L0`` (the difference set residues) and the multiplier ``t``.
"""

from __future__ import annotations

from math import gcd

from repro.crypto.numbers import modinv
from repro.designs.difference_sets import DifferenceSet
from repro.exceptions import KeyUniverseError, SubstitutionError
from repro.substitution.base import KeySubstitution

_MODES = ("direct", "scan")


class OvalSubstitution(KeySubstitution):
    """Line-to-oval renumbering of search keys: ``k' = k*t mod v``."""

    name = "oval"
    order_preserving = False

    def __init__(
        self,
        design: DifferenceSet,
        t: int,
        mode: str = "direct",
        reject_design_multipliers: bool = False,
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise SubstitutionError(f"mode must be one of {_MODES}, got {mode!r}")
        if gcd(t % design.v, design.v) != 1:
            raise SubstitutionError(
                f"multiplier {t} is not a unit modulo {design.v}; map not invertible"
            )
        if reject_design_multipliers:
            from repro.designs.multipliers import is_numerical_multiplier

            if is_numerical_multiplier(design, t % design.v):
                raise SubstitutionError(
                    f"t = {t} is a numerical multiplier of the design: the "
                    "'oval' system would be the line system itself (see "
                    "repro.designs.multipliers); choose t from "
                    "non_multiplier_units(design)"
                )
        self.design = design
        self.t = t % design.v
        self.t_inverse = modinv(self.t, design.v)
        self.mode = mode

    # -- substitution ----------------------------------------------------

    def _substitute(self, key: int) -> int:
        if not 0 <= key < self.design.v:
            raise KeyUniverseError(key, f"Z_{self.design.v}")
        if self.mode == "scan":
            return self._substitute_by_scan(key)
        return key * self.t % self.design.v

    def _substitute_by_scan(self, key: int) -> int:
        """The paper's literal line-generation procedure."""
        for y in range(self.design.v):
            line = self.design.line(y)
            for position, point in enumerate(line):
                if point == key:
                    # generate the oval for this line; take the same position
                    oval = tuple(p * self.t % self.design.v for p in line)
                    return oval[position]
        raise SubstitutionError(
            f"key {key} not found on any line of the design (v={self.design.v})"
        )

    def scan_lines_needed(self, key: int) -> int:
        """Number of lines generated before the scan finds ``key``.

        The first line through ``key`` is ``L_y`` with
        ``y = min((key - d) mod v for d in D)``; the scan generates
        ``y + 1`` lines.  Feeds the C6 scan-vs-direct ablation.
        """
        if not 0 <= key < self.design.v:
            raise KeyUniverseError(key, f"Z_{self.design.v}")
        return min((key - d) % self.design.v for d in self.design.residues) + 1

    def _invert(self, stored: int) -> int:
        if not 0 <= stored < self.design.v:
            raise KeyUniverseError(stored, f"Z_{self.design.v}")
        return stored * self.t_inverse % self.design.v

    # -- accounting ----------------------------------------------------------

    def key_universe(self) -> range:
        return range(self.design.v)

    def max_substitute(self) -> int:
        return self.design.v - 1

    def secret_material(self) -> dict[str, object]:
        return {
            "v": self.design.v,
            "k": self.design.k,
            "lambda": self.design.lam,
            "first_line": self.design.residues,
            "multiplier": self.t,
        }
