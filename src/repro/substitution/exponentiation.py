"""§4.2 -- substitution using exponentiation modulus.

Treatments of the block design act as *exponents* of a secret primitive
element ``g`` of ``Z_N`` (``N`` prime, ``N >= v``):

1. find a treatment ``e`` (a point on some line) with ``g^e = k (mod N)``
   where ``k`` is the search key -- the paper scans lines from ``L0`` and
   takes the first match;
2. take the corresponding treatment on the oval, ``o = e * t mod v``;
3. substitute ``k' = g^o mod N``.

The paper's own example (``g = 7``, ``N = 13`` over the (13,4,1) design)
has two quirks this implementation surfaces explicitly:

* ``g^0 = g^(N-1) = 1``, so when ``N - 1 < v`` a key can match several
  treatments; the paper's first-match scan rule disambiguates, and
  :meth:`canonical_exponent` implements exactly that rule;
* for the same reason the *whole map* can collide (two keys sharing one
  substitute) when ``N - 1 < v``; :meth:`is_injective` reports this, and
  choosing ``N - 1 >= v``'s complement (``v >= N - 1``) with distinct
  oval exponents -- or simply ``N - 1 >= v`` -- restores injectivity.
  The enciphered tree refuses non-injective configurations.

Secret material: the design, the multiplier ``t``, and ``g`` and ``N``
(*"the value of g and N must be kept secret, in addition to the secret
block design"*).
"""

from __future__ import annotations

from math import gcd

from repro.crypto.numbers import discrete_log, is_prime, is_primitive_root, modinv
from repro.designs.difference_sets import DifferenceSet
from repro.exceptions import CryptoError, KeyUniverseError, SubstitutionError
from repro.substitution.base import KeySubstitution

_MODES = ("direct", "scan")


class ExponentiationSubstitution(KeySubstitution):
    """Key disguise via ``k = g^e  ->  k' = g^(e*t mod v)  (mod N)``."""

    name = "exponentiation"
    order_preserving = False

    def __init__(
        self,
        design: DifferenceSet,
        t: int,
        g: int,
        n_modulus: int,
        mode: str = "direct",
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise SubstitutionError(f"mode must be one of {_MODES}, got {mode!r}")
        if not is_prime(n_modulus):
            raise SubstitutionError(f"N = {n_modulus} must be prime")
        if n_modulus < design.v:
            raise SubstitutionError(
                f"N = {n_modulus} must not be less than v = {design.v} (paper §4.2)"
            )
        if not is_primitive_root(g, n_modulus):
            raise SubstitutionError(
                f"g = {g} is not a primitive element of Z_{n_modulus}"
            )
        if gcd(t % design.v, design.v) != 1:
            raise SubstitutionError(
                f"multiplier {t} is not a unit modulo {design.v}"
            )
        self.design = design
        self.t = t % design.v
        self.t_inverse = modinv(self.t, design.v)
        self.g = g
        self.n_modulus = n_modulus
        self.mode = mode

    # -- exponent bookkeeping ----------------------------------------------

    @property
    def group_order(self) -> int:
        """Order of ``g``: ``N - 1`` since ``g`` is primitive."""
        return self.n_modulus - 1

    def _scan_rank(self, exponent: int) -> tuple[int, int]:
        """Where the line scan first meets ``exponent``: (line, position).

        Treatment ``e`` lies on line ``L_y`` iff ``(e - y) mod v`` is a
        residue of the difference set; the first such line is the minimum
        over residues of ``(e - d) mod v``.
        """
        v = self.design.v
        y = min((exponent - d) % v for d in self.design.residues)
        position = self.design.residues.index((exponent - y) % v)
        return (y, position)

    def canonical_exponent(self, key: int) -> int:
        """The treatment the paper's first-match scan assigns to ``key``.

        All treatments ``e < v`` with ``g^e = key (mod N)`` are candidates
        (they differ by multiples of ``N - 1``); the one met earliest in
        the ``L0, L1, ...`` scan wins.
        """
        if not 1 <= key < self.n_modulus:
            raise KeyUniverseError(key, f"units of Z_{self.n_modulus}")
        try:
            base = discrete_log(self.g, key, self.n_modulus)
        except CryptoError as exc:
            raise KeyUniverseError(key, f"powers of {self.g} mod {self.n_modulus}") from exc
        candidates = list(range(base, self.design.v, self.group_order))
        if not candidates:
            raise KeyUniverseError(
                key, f"g^e with e < v = {self.design.v} (needed exponent {base})"
            )
        return min(candidates, key=self._scan_rank)

    # -- substitution ----------------------------------------------------

    def _substitute(self, key: int) -> int:
        if self.mode == "scan":
            return self._substitute_by_scan(key)
        exponent = self.canonical_exponent(key)
        oval_exponent = exponent * self.t % self.design.v
        return pow(self.g, oval_exponent, self.n_modulus)

    def _substitute_by_scan(self, key: int) -> int:
        """The paper's literal procedure: generate lines, compare powers."""
        if not 1 <= key < self.n_modulus:
            raise KeyUniverseError(key, f"units of Z_{self.n_modulus}")
        for y in range(self.design.v):
            for point in self.design.line(y):
                if pow(self.g, point, self.n_modulus) == key:
                    oval_exponent = point * self.t % self.design.v
                    return pow(self.g, oval_exponent, self.n_modulus)
        raise KeyUniverseError(key, f"powers of {self.g} on any line (v={self.design.v})")

    def _invert(self, stored: int) -> int:
        """Recover the key: undo the oval map on the exponent.

        When ``N - 1 < v`` several oval exponents encode ``stored``; each
        candidate is checked against the forward map so that inversion is
        exact on every canonical substitute.
        """
        if not 1 <= stored < self.n_modulus:
            raise KeyUniverseError(stored, f"units of Z_{self.n_modulus}")
        base = discrete_log(self.g, stored, self.n_modulus)
        for oval_exponent in range(base, self.design.v, self.group_order):
            exponent = oval_exponent * self.t_inverse % self.design.v
            key = pow(self.g, exponent, self.n_modulus)
            if self._substitute(key) == stored:
                return key
        raise SubstitutionError(f"{stored} is not a substitute of any key")

    # -- diagnostics ---------------------------------------------------------

    def is_injective(self) -> bool:
        """True iff no two keys share a substitute.

        Guaranteed when ``v <= N - 1`` (each key has one candidate
        exponent below ``v``... the clean regime) -- but checked
        exhaustively, because the paper's own ``N = v = 13`` example sits
        in the degenerate regime.
        """
        seen: dict[int, int] = {}
        for key in self.representable_keys():
            sub = pow(
                self.g,
                self.canonical_exponent(key) * self.t % self.design.v,
                self.n_modulus,
            )
            if sub in seen and seen[sub] != key:
                return False
            seen[sub] = key
        return True

    def representable_keys(self) -> list[int]:
        """All keys ``g^e mod N`` for treatments ``e < v`` (sorted)."""
        limit = min(self.design.v, self.group_order)
        keys = {pow(self.g, e, self.n_modulus) for e in range(limit)}
        if self.design.v > self.group_order:
            # exponents wrap the group order; they add no new keys
            pass
        return sorted(keys)

    def key_universe(self) -> range:
        """Dense key range when every unit is representable, else minimal.

        When ``v >= N - 1`` every unit ``1..N-1`` is a power of ``g`` with
        exponent below ``v``, so the universe is the full unit range.
        """
        if self.design.v >= self.group_order:
            return range(1, self.n_modulus)
        raise SubstitutionError(
            "universe is a sparse subset (v < N-1); use representable_keys()"
        )

    def max_substitute(self) -> int:
        return self.n_modulus - 1

    def secret_material(self) -> dict[str, object]:
        return {
            "v": self.design.v,
            "k": self.design.k,
            "lambda": self.design.lam,
            "first_line": self.design.residues,
            "multiplier": self.t,
            "g": self.g,
            "N": self.n_modulus,
        }
