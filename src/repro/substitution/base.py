"""The common interface of every key-disguising scheme.

A scheme maps plaintext search keys (integers) to stored *substitutes*
and back.  Beyond the two maps, the interface captures the quantities the
paper's arguments rely on:

* whether the scheme is **order-preserving** (§4.3's sum substitution is;
  the others are not) -- this decides whether the substituted tree keeps
  the plaintext tree's shape;
* the **size of the secret material** -- the paper's headline advantage
  over conversion tables: *"the only information that has to be kept
  secret are the parameters {v, k, lambda} of the block design, the first
  line L0 and the mapping from the lines to ovals"*;
* the **bound on substitute values** -- which fixes the stored key width
  and hence the node fanout (experiment C2);
* operation counters, so traversal experiments can report substitutions
  performed instead of decryptions avoided.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.counters import ThreadSafeCounters


class SubstitutionCounters(ThreadSafeCounters):
    """Tally of disguise operations (cheap arithmetic, not decryptions).

    Thread-safe (per-thread accumulation, merged reads): concurrent
    readers invert disguises in parallel, and lost increments would
    under-report traversal work.
    """

    _FIELDS = ("substitutions", "inversions")

    @property
    def total(self) -> int:
        snap = self.snapshot()
        return snap["substitutions"] + snap["inversions"]


class KeySubstitution(ABC):
    """Invertible disguise ``f`` applied to search keys before disk write."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "abstract"

    #: True iff ``a < b  =>  f(a) < f(b)`` over the key universe.
    order_preserving: bool = False

    def __init__(self) -> None:
        self.counters = SubstitutionCounters()

    # -- the two maps ------------------------------------------------------

    def substitute(self, key: int) -> int:
        """Disguise ``key``; raises ``KeyUniverseError`` outside the universe."""
        self.counters.bump("substitutions")
        return self._substitute(key)

    def invert(self, stored: int) -> int:
        """Recover the plaintext key from its stored substitute."""
        self.counters.bump("inversions")
        return self._invert(stored)

    @abstractmethod
    def _substitute(self, key: int) -> int: ...

    @abstractmethod
    def _invert(self, stored: int) -> int: ...

    # -- accounting ----------------------------------------------------------

    @abstractmethod
    def key_universe(self) -> range:
        """The plaintext keys this scheme can disguise."""

    @abstractmethod
    def max_substitute(self) -> int:
        """Inclusive upper bound on substitute values (stored key width)."""

    @abstractmethod
    def secret_material(self) -> dict[str, object]:
        """The values that must be kept secret, by name."""

    def secret_size_bytes(self) -> int:
        """Total bytes of secret material (the smartcard payload).

        Integers count their minimal byte width; tuples count each entry.
        """
        total = 0
        for value in self.secret_material().values():
            if isinstance(value, int):
                total += max(1, (value.bit_length() + 7) // 8)
            elif isinstance(value, (tuple, list)):
                for item in value:
                    total += max(1, (int(item).bit_length() + 7) // 8)
            else:
                raise TypeError(f"unaccountable secret of type {type(value)!r}")
        return total

    # -- conveniences ----------------------------------------------------

    def substitute_many(self, keys: list[int]) -> list[int]:
        """Disguise a list of keys (counted individually)."""
        return [self.substitute(k) for k in keys]

    def reset_counters(self) -> None:
        self.counters.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} name={self.name!r}>"
