"""The null disguise, used by plaintext baselines."""

from __future__ import annotations

from repro.exceptions import KeyUniverseError
from repro.substitution.base import KeySubstitution


class IdentitySubstitution(KeySubstitution):
    """``f(k) = k`` over ``[0, bound)``.

    Trivially order-preserving; keeps no secret.  The plaintext B-Tree the
    paper's Figure 1 shows "before" substitution uses exactly this.
    """

    name = "identity"
    order_preserving = True

    def __init__(self, bound: int = 1 << 63) -> None:
        super().__init__()
        if bound < 1:
            raise KeyUniverseError(bound, "empty identity universe")
        self.bound = bound

    def _substitute(self, key: int) -> int:
        if not 0 <= key < self.bound:
            raise KeyUniverseError(key, f"[0, {self.bound})")
        return key

    def _invert(self, stored: int) -> int:
        if not 0 <= stored < self.bound:
            raise KeyUniverseError(stored, f"[0, {self.bound})")
        return stored

    def key_universe(self) -> range:
        return range(self.bound)

    def max_substitute(self) -> int:
        return self.bound - 1

    def secret_material(self) -> dict[str, object]:
        return {}
