"""§4.3 -- substitution using the sum of treatments in blocks.

Each search key is associated with a whole *line* of the design rather
than a single point: key ``x`` gets line ``L_{w+x}`` for a secret starting
index ``w``, and is substituted by the running total of every integer
treatment from ``L_w`` through ``L_{w+x}`` (no modular reduction).

Because every line sum is positive, the running totals are strictly
increasing: *"the corresponding substitute search keys ... is a set of
integers maintaining that ascending order"*.  The substituted B-Tree
therefore has **exactly** the plaintext tree's shape (Figure 3), and the
scheme can run inside a high-level security filter in front of an
unmodifiable DBMS -- the paper's §4.3 deployment, realised in
:class:`repro.core.security_filter.SecurityFilter`.

For the paper's (13,4,1) design with ``w = 0`` the substitutes are
13, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259, 290, 312.

Substitution uses the closed form in
:meth:`repro.designs.difference_sets.DifferenceSet.cumulative_line_sum`
(O(k) per key); inversion binary-searches the monotone map.
"""

from __future__ import annotations

from repro.designs.difference_sets import DifferenceSet
from repro.exceptions import KeyUniverseError, SubstitutionError
from repro.substitution.base import KeySubstitution


class SumSubstitution(KeySubstitution):
    """Order-preserving disguise via cumulative treatment sums."""

    name = "sum-of-treatments"
    order_preserving = True

    def __init__(
        self,
        design: DifferenceSet,
        start_line: int = 0,
        num_keys: int | None = None,
    ) -> None:
        super().__init__()
        if not 0 <= start_line < design.v:
            raise SubstitutionError(
                f"starting line w={start_line} outside [0, {design.v})"
            )
        max_keys = design.v - start_line
        if start_line > 0:
            # paper: w + R < v - 1 keeps the window clear of wrapping into L0
            max_keys = design.v - 1 - start_line
        if num_keys is None:
            num_keys = max_keys
        if not 1 <= num_keys <= max_keys:
            raise SubstitutionError(
                f"window of {num_keys} keys from L_{start_line} exceeds v={design.v}"
            )
        self.design = design
        self.start_line = start_line
        self.num_keys = num_keys

    # -- substitution ----------------------------------------------------

    def _substitute(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise KeyUniverseError(key, f"[0, {self.num_keys})")
        return self.design.cumulative_line_sum(
            self.start_line, self.start_line + key
        )

    def _invert(self, stored: int) -> int:
        """Binary search the strictly increasing substitute sequence."""
        lo, hi = 0, self.num_keys - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            value = self.design.cumulative_line_sum(
                self.start_line, self.start_line + mid
            )
            if value == stored:
                return mid
            if value < stored:
                lo = mid + 1
            else:
                hi = mid - 1
        raise SubstitutionError(f"{stored} is not a substitute of any key")

    def substitute_lower_bound(self, key: int) -> int:
        """Substitute for range endpoints that may lie between keys.

        Clamps ``key`` into the universe so that filters can translate
        arbitrary query ranges: order preservation makes the clamped
        substitute a correct comparison proxy.
        """
        clamped = min(max(key, 0), self.num_keys - 1)
        return self.design.cumulative_line_sum(
            self.start_line, self.start_line + clamped
        )

    # -- accounting ----------------------------------------------------------

    def key_universe(self) -> range:
        return range(self.num_keys)

    def max_substitute(self) -> int:
        return self.design.cumulative_line_sum(
            self.start_line, self.start_line + self.num_keys - 1
        )

    def substitute_table(self) -> list[tuple[int, tuple[int, ...], int]]:
        """Rows ``(key, line, substitute)`` -- the paper's §4.3 table."""
        return [
            (
                key,
                self.design.line(self.start_line + key),
                self.substitute(key),
            )
            for key in range(self.num_keys)
        ]

    def secret_material(self) -> dict[str, object]:
        return {
            "v": self.design.v,
            "k": self.design.k,
            "lambda": self.design.lam,
            "first_line": self.design.residues,
            "start_line": self.start_line,
        }


class RankedSumSubstitution(KeySubstitution):
    """§4.3's rank-based reading: the i-th *smallest existing* key gets
    line ``L_{w+i}``.

    The paper assigns lines to "a given set of unique search keys in an
    ascending order of size".  This variant implements that reading
    literally: it is built from an explicit census of the keys and maps
    rank -> cumulative line sum.  It handles arbitrary (sparse, huge)
    key values, at two costs the fixed-universe
    :class:`SumSubstitution` avoids:

    * the census itself becomes part of the secret state -- precisely the
      "conversion table" the paper is proud of not needing;
    * inserting a new key can shift every rank above it, forcing
      re-substitution (so it suits static or append-mostly data).

    Both variants are order-preserving and produce the same value
    sequence over a dense key range.
    """

    name = "ranked-sum-of-treatments"
    order_preserving = True

    def __init__(
        self,
        design: DifferenceSet,
        keys: "list[int]",
        start_line: int = 0,
    ) -> None:
        super().__init__()
        census = sorted(set(keys))
        if not census:
            raise SubstitutionError("the key census is empty")
        if not 0 <= start_line < design.v:
            raise SubstitutionError(
                f"starting line w={start_line} outside [0, {design.v})"
            )
        max_keys = design.v - start_line
        if start_line > 0:
            max_keys = design.v - 1 - start_line
        if len(census) > max_keys:
            raise SubstitutionError(
                f"census of {len(census)} keys exceeds the window of "
                f"{max_keys} lines from L_{start_line} (v={design.v})"
            )
        self.design = design
        self.start_line = start_line
        self._census = census
        self._rank = {key: rank for rank, key in enumerate(census)}

    def _value_at_rank(self, rank: int) -> int:
        return self.design.cumulative_line_sum(
            self.start_line, self.start_line + rank
        )

    def _substitute(self, key: int) -> int:
        rank = self._rank.get(key)
        if rank is None:
            raise KeyUniverseError(key, f"census of {len(self._census)} keys")
        return self._value_at_rank(rank)

    def _invert(self, stored: int) -> int:
        lo, hi = 0, len(self._census) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            value = self._value_at_rank(mid)
            if value == stored:
                return self._census[mid]
            if value < stored:
                lo = mid + 1
            else:
                hi = mid - 1
        raise SubstitutionError(f"{stored} is not a substitute of any key")

    def substitute_lower_bound(self, key: int) -> int:
        """Order-correct proxy for range endpoints between census keys."""
        import bisect

        rank = bisect.bisect_left(self._census, key)
        rank = min(max(rank, 0), len(self._census) - 1)
        return self._value_at_rank(rank)

    def key_universe(self) -> range:
        raise SubstitutionError(
            "the ranked variant has a sparse universe; use census_keys()"
        )

    def census_keys(self) -> list[int]:
        """The keys this codebook covers, ascending."""
        return list(self._census)

    def max_substitute(self) -> int:
        return self._value_at_rank(len(self._census) - 1)

    def secret_material(self) -> dict[str, object]:
        # the census is part of the secret: the trade-off this variant makes
        return {
            "v": self.design.v,
            "k": self.design.k,
            "lambda": self.design.lam,
            "first_line": self.design.residues,
            "start_line": self.start_line,
            "census": tuple(self._census),
        }
