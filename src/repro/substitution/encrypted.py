"""The baseline the paper argues against: encrypting search keys outright.

§4.2: *"Although the encryption of the search keys provides the best
security, it is disadvantageous in terms of the resulting cryptograms
that have to be substituted for the search keys ... Fewer triplets can be
fitted onto a given node block, and the depth of the B-Tree would then
increase substantially."*

This scheme wraps any :class:`~repro.crypto.base.IntegerCipher` (RSA in
the paper's setting).  Each ``substitute`` is a real encryption and each
``invert`` a real decryption, so traversal-cost experiments charge it
honestly; and ``max_substitute`` is the full modulus, so the storage
experiment (C2) sees the fanout collapse the paper predicts.
"""

from __future__ import annotations

from repro.crypto.base import IntegerCipher
from repro.crypto.rsa import RSA
from repro.exceptions import KeyUniverseError
from repro.substitution.base import KeySubstitution


class EncryptedKeySubstitution(KeySubstitution):
    """``f = E`` -- the disguise *is* the cipher."""

    name = "encrypted-key"
    order_preserving = False

    def __init__(self, cipher: IntegerCipher, key_bound: int | None = None) -> None:
        super().__init__()
        self.cipher = cipher
        self.key_bound = key_bound if key_bound is not None else cipher.modulus
        if not 1 <= self.key_bound <= cipher.modulus:
            raise KeyUniverseError(self.key_bound, f"[1, {cipher.modulus}]")

    def _substitute(self, key: int) -> int:
        if not 0 <= key < self.key_bound:
            raise KeyUniverseError(key, f"[0, {self.key_bound})")
        return self.cipher.encrypt_int(key)

    def _invert(self, stored: int) -> int:
        return self.cipher.decrypt_int(stored)

    def key_universe(self) -> range:
        return range(self.key_bound)

    def max_substitute(self) -> int:
        return self.cipher.modulus - 1

    def secret_material(self) -> dict[str, object]:
        inner = self.cipher
        # unwrap counting decorators to reach key material
        while hasattr(inner, "inner"):
            inner = inner.inner
        if isinstance(inner, RSA):
            kp = inner.keypair
            return {"n": kp.n, "e": kp.e, "d": kp.d}
        return {"modulus": inner.modulus}
