"""Search-key disguising schemes -- the paper's primary contribution.

Instead of encrypting B-Tree search keys, the paper *disguises* them with
an invertible map built from a combinatorial block design, so that a
legal user navigates nodes with cheap arithmetic (no decryptions) while
an opponent cannot associate the stored keys with the encrypted pointers.

* :class:`~repro.substitution.oval.OvalSubstitution` -- §4.1, points on
  lines renumbered to points on ovals: ``k' = k*t mod v``;
* :class:`~repro.substitution.exponentiation.ExponentiationSubstitution`
  -- §4.2, treatments as exponents of a secret primitive element of Z_N;
* :class:`~repro.substitution.sums.SumSubstitution` -- §4.3, cumulative
  sums of line treatments: order-preserving, so the B-Tree keeps its
  exact shape and even a high-level security filter can use it;
* :class:`~repro.substitution.encrypted.EncryptedKeySubstitution` -- the
  baseline the paper argues *against*: keys encrypted outright;
* :class:`~repro.substitution.identity.IdentitySubstitution` -- the null
  disguise, for plaintext baselines.
"""

from repro.substitution.base import KeySubstitution, SubstitutionCounters
from repro.substitution.identity import IdentitySubstitution
from repro.substitution.oval import OvalSubstitution
from repro.substitution.exponentiation import ExponentiationSubstitution
from repro.substitution.sums import RankedSumSubstitution, SumSubstitution
from repro.substitution.encrypted import EncryptedKeySubstitution

__all__ = [
    "EncryptedKeySubstitution",
    "ExponentiationSubstitution",
    "IdentitySubstitution",
    "KeySubstitution",
    "OvalSubstitution",
    "RankedSumSubstitution",
    "SubstitutionCounters",
    "SumSubstitution",
]
